package fednet

// The data plane: cross-core tunnel messages travel worker-to-worker over
// UDP datagrams (the paper's IP-in-UDP core tunnels) or a TCP mesh, never
// through the coordinator. Reliability is not required for correctness of
// ordering — the barrier applies messages in canonical (fire, sender, seq)
// order regardless of arrival order — but every counted message must
// eventually arrive, so the UDP plane is for the loss-free links of a
// cluster interconnect (or loopback) and TCP is the fallback everywhere
// else.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"modelnet/internal/fednet/wire"
	"modelnet/internal/parcore"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// collector accumulates decoded inbound tunnel messages per sender
// channel. The control loop blocks in wait until the barrier-announced
// prefix of every channel has arrived; readers feed it from socket
// goroutines. Selection is by each message's dense channel sequence
// number, so messages a peer sends for the *next* barrier round — already
// in flight while this worker still awaits the current one — sit in the
// buffer untouched instead of corrupting the round, and a duplicated
// datagram is detected rather than applied twice.
type collector struct {
	mu       sync.Mutex
	cond     *sync.Cond
	channels []channelBuf
	// closed[j] is sender j's latest flush close marker (the cumulative
	// channel count its last completed flush reached). Purely diagnostic:
	// when a wait times out, a channel whose close marker covers the
	// expectation but whose contiguous prefix does not has lost a datagram
	// in transit, and the error can say so.
	closed []uint64
	// lenient[j] marks a channel that went through a recovery reset:
	// duplicates of already-buffered or already-delivered sequences are
	// expected there (the respawned peer's replay and any of the dead
	// process's still-in-flight datagrams carry byte-identical messages,
	// by the determinism contract) and are dropped instead of failing the
	// run. Ordinary channels keep the duplicate tripwire.
	lenient []bool
	err     error
}

// channelBuf is one sender→me channel. Sequences are dense and 1-based,
// so readiness is a counter comparison: contig is the highest sequence
// with every message delivered+1..contig buffered, maintained in O(1)
// amortized as messages arrive (possibly out of order).
type channelBuf struct {
	buffered  map[uint64]parcore.Msg
	delivered uint64 // prefix already handed to the barrier
	contig    uint64 // prefix currently available
}

func newCollector(k int) *collector {
	c := &collector{channels: make([]channelBuf, k), closed: make([]uint64, k), lenient: make([]bool, k)}
	for j := range c.channels {
		c.channels[j].buffered = map[uint64]parcore.Msg{}
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) add(m parcore.Msg, tseq uint64) {
	c.mu.Lock()
	switch {
	case m.Sender < 0 || m.Sender >= len(c.channels):
		if c.err == nil {
			c.err = fmt.Errorf("fednet: data plane: message from out-of-range shard %d", m.Sender)
		}
	case tseq == 0:
		if c.err == nil {
			c.err = fmt.Errorf("fednet: data plane: zero channel sequence from shard %d", m.Sender)
		}
	default:
		ch := &c.channels[m.Sender]
		if _, dup := ch.buffered[tseq]; dup || tseq <= ch.delivered {
			if !c.lenient[m.Sender] && c.err == nil {
				c.err = fmt.Errorf("fednet: data plane: duplicate message %d from shard %d", tseq, m.Sender)
			}
			break
		}
		ch.buffered[tseq] = m
		for {
			if _, ok := ch.buffered[ch.contig+1]; !ok {
				break
			}
			ch.contig++
		}
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// noteClose records sender j's flush close marker (monotone cumulative).
func (c *collector) noteClose(sender int, close uint64) {
	c.mu.Lock()
	if sender >= 0 && sender < len(c.closed) && close > c.closed[sender] {
		c.closed[sender] = close
	}
	c.mu.Unlock()
}

// reset drops sender's buffered-but-undelivered messages (in-flight frames
// from rounds a recovery rewound) and marks the channel lenient: the
// respawned peer will resend its whole log, re-covering the dropped suffix
// and overlapping the delivered prefix. delivered/contig stay at the
// consumed prefix — the coordinator's retried expectations resume there.
func (c *collector) reset(sender int) {
	c.mu.Lock()
	if sender >= 0 && sender < len(c.channels) {
		ch := &c.channels[sender]
		for tseq := range ch.buffered {
			delete(ch.buffered, tseq)
		}
		ch.contig = ch.delivered
		c.lenient[sender] = true
	}
	c.mu.Unlock()
}

// deliveredVec snapshots the per-channel delivered prefixes (the inbox
// cursor a checkpoint records).
func (c *collector) deliveredVec() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := make([]uint64, len(c.channels))
	for j := range c.channels {
		v[j] = c.channels[j].delivered
	}
	return v
}

func (c *collector) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// readyLocked reports whether, for every sender j, the full channel prefix
// (delivered[j], expect[j]] is buffered.
func (c *collector) readyLocked(expect []uint64) bool {
	for j, want := range expect {
		if c.channels[j].contig < want {
			return false
		}
	}
	return true
}

// wait blocks until the barrier's channel prefixes have all arrived, then
// extracts exactly those messages (later in-flight ones stay buffered).
// The timeout guards against a lost datagram or dead peer hanging the
// federation forever; a timer that fires in the instant the wait succeeds
// must not poison later rounds.
func (c *collector) wait(expect []uint64, timeout time.Duration) ([]parcore.Msg, error) {
	if len(expect) != len(c.channels) {
		return nil, fmt.Errorf("fednet: barrier names %d channels, data plane has %d", len(expect), len(c.channels))
	}
	done := false
	deadline := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		if !done && c.err == nil {
			// Name every channel still short of its expectation, so an
			// unrecovered stall is diagnosable: the shard IDs point at the
			// dead (or slow) peers, and the close markers distinguish a
			// sender that never flushed from one whose datagram was lost
			// in transit.
			missing := ""
			for j, want := range expect {
				if ch := &c.channels[j]; ch.contig < want {
					missing += fmt.Sprintf("; shard %d (have %d of %d", j, ch.contig, want)
					if c.closed[j] >= want {
						missing += fmt.Sprintf("; its flush closed at %d — datagram lost in transit, use the tcp data plane", c.closed[j])
					}
					missing += ")"
				}
			}
			c.err = fmt.Errorf("fednet: data plane: timed out after %v awaiting peer messages%s", timeout, missing)
		}
		c.mu.Unlock()
		c.cond.Broadcast()
	})
	defer deadline.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil && !c.readyLocked(expect) {
		c.cond.Wait()
	}
	done = true
	if c.err != nil {
		return nil, c.err
	}
	var msgs []parcore.Msg
	for j, want := range expect {
		ch := &c.channels[j]
		if want <= ch.delivered {
			continue // already handed out (coordinator counters are monotonic)
		}
		for t := ch.delivered + 1; t <= want; t++ {
			msgs = append(msgs, ch.buffered[t])
			delete(ch.buffered, t)
		}
		ch.delivered = want
	}
	return msgs, nil
}

// dataPlane sends encoded tunnel messages to peers and feeds received ones
// into the collector.
type dataPlane struct {
	plane string
	shard int

	// maxDatagram bounds one UDP data-plane frame (header included);
	// batches are chunked under it, and a single message that cannot fit
	// fails the run instead of being silently truncated by the kernel.
	maxDatagram int

	udp      *net.UDPConn
	udpPeers []*net.UDPAddr

	tcp []net.Conn // per peer shard; nil at own index

	col    *collector
	closed chan struct{}
	wg     sync.WaitGroup

	// Recoverable mode: peers may die and be respawned at new addresses
	// mid-run. The plane then (a) survives peer connection errors instead of
	// poisoning the collector, (b) keeps accepting replacement TCP
	// connections for the run's lifetime, and (c) can rewire a peer slot to
	// a respawned worker's endpoints. endMu guards the endpoint tables
	// (udpPeers entries, tcp entries) shared between the control goroutine
	// and the replacement-accept goroutine.
	recoverable bool
	timeout     time.Duration
	tcpLn       net.Listener
	endMu       sync.Mutex
	// wmu serializes frame writes: recovery resends run on reader
	// goroutines, concurrently with the control goroutine's own sends.
	wmu sync.Mutex
	// onRecover handles a peer's data-plane recovery request (TResend):
	// update the peer's endpoints and retransmit this worker's send log.
	// Runs on a reader goroutine.
	onRecover func(peer int, src *net.UDPAddr) error

	// Wire-cost counters, maintained by the sending (control) goroutine.
	frames uint64 // data-plane frames written (= syscalls on the UDP plane)
	bytes  uint64 // bytes handed to the sockets, framing included
}

// decodeMsg converts a received data frame into a parcore message plus its
// channel sequence.
func decodeMsg(body []byte) (parcore.Msg, uint64, error) {
	d, err := wire.DecodeData(body)
	if err != nil {
		return parcore.Msg{}, 0, err
	}
	m, err := liveMsg(int(d.Sender), wire.DataMsg{
		Seq: d.Seq, Kind: d.Kind, Pid: d.Pid,
		At: d.At, Lag: d.Lag, Fire: d.Fire, Pkt: d.Pkt,
	})
	if err != nil {
		return parcore.Msg{}, 0, err
	}
	return m, d.TSeq, nil
}

// liveMsg reconstructs a parcore message from one decoded batch element.
func liveMsg(sender int, d wire.DataMsg) (parcore.Msg, error) {
	pkt, err := d.Pkt.Packet()
	if err != nil {
		return parcore.Msg{}, err
	}
	return parcore.Msg{
		Pkt:    pkt,
		Pid:    pipes.ID(d.Pid),
		At:     vtime.Time(d.At),
		Lag:    vtime.Duration(d.Lag),
		Fire:   vtime.Time(d.Fire),
		Sender: sender,
		Seq:    d.Seq,
	}, nil
}

// wireMsg converts an outbound parcore message to its wire form (the batch
// element; Sender and the channel sequence live in the enclosing frame).
func wireMsg(m parcore.Msg) (wire.DataMsg, error) {
	pw, err := wire.EncodePacket(m.Pkt)
	if err != nil {
		return wire.DataMsg{}, err
	}
	kind := wire.KindTunnel
	if m.Pid < 0 {
		kind = wire.KindDelivery
	}
	return wire.DataMsg{
		Seq:  m.Seq,
		Kind: kind,
		Pid:  int32(m.Pid),
		At:   int64(m.At),
		Lag:  int64(m.Lag),
		Fire: int64(m.Fire),
		Pkt:  pw,
	}, nil
}

// encodeMsg converts an outbound parcore message into a single-message data
// frame body (the unbatched plane).
func encodeMsg(m parcore.Msg, tseq uint64) ([]byte, error) {
	d, err := wireMsg(m)
	if err != nil {
		return nil, err
	}
	return wire.Data{
		Sender: uint16(m.Sender),
		Seq:    d.Seq,
		TSeq:   tseq,
		Kind:   d.Kind,
		Pid:    d.Pid,
		At:     d.At,
		Lag:    d.Lag,
		Fire:   d.Fire,
		Pkt:    d.Pkt,
	}.Encode(), nil
}

// openDataPlane wires this worker to its peers. UDP: everyone already has a
// bound socket; peers are just addresses. TCP: workers form a full mesh —
// shard i dials every j < i (identifying itself with a hello frame) and
// accepts a connection from every j > i.
func openDataPlane(plane string, shard int, addrs []string, udp *net.UDPConn, tcpLn net.Listener, col *collector, timeout time.Duration, maxDatagram int, recoverable, resume bool) (*dataPlane, error) {
	k := len(addrs)
	if maxDatagram <= 0 {
		maxDatagram = DefaultMaxDatagram
	}
	dp := &dataPlane{
		plane: plane, shard: shard, maxDatagram: maxDatagram, col: col,
		closed: make(chan struct{}), recoverable: recoverable, timeout: timeout,
	}
	switch plane {
	case DataUDP:
		dp.udp = udp
		dp.udpPeers = make([]*net.UDPAddr, k)
		for j, a := range addrs {
			if j == shard {
				continue
			}
			ua, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return nil, fmt.Errorf("fednet: peer %d udp addr %q: %w", j, a, err)
			}
			dp.udpPeers[j] = ua
		}
		// A window's handoffs burst at the barrier; buffer enough that the
		// kernel never sheds a counted datagram before the reader drains it.
		_ = udp.SetReadBuffer(8 << 20)
		_ = udp.SetWriteBuffer(8 << 20)
	case DataTCP:
		dp.tcp = make([]net.Conn, k)
		if resume {
			// A respawned worker cannot rely on the mesh's dial direction —
			// the live peers formed their mesh long ago and will not redial.
			// It dials everyone; each peer's replacement-accept loop swaps
			// the new connection into this shard's slot.
			for j := 0; j < k; j++ {
				if j == shard {
					continue
				}
				conn, err := net.DialTimeout("tcp", addrs[j], timeout)
				if err != nil {
					return nil, fmt.Errorf("fednet: redial peer %d at %s: %w", j, addrs[j], err)
				}
				var e wire.Enc
				e.U16(uint16(shard))
				if err := wire.WriteFrame(conn, wire.THello, e.Bytes()); err != nil {
					return nil, err
				}
				if tc, ok := conn.(*net.TCPConn); ok {
					_ = tc.SetNoDelay(true)
				}
				dp.tcp[j] = conn
			}
			dp.tcpLn = tcpLn
			break
		}
		errc := make(chan error, 2)
		go func() { // accept from higher shards
			for j := shard + 1; j < k; j++ {
				conn, err := tcpLn.Accept()
				if err != nil {
					errc <- err
					return
				}
				typ, body, err := wire.ReadFrame(conn)
				if err != nil || typ != wire.THello || len(body) < 2 {
					errc <- fmt.Errorf("fednet: bad data-plane hello: %v", err)
					return
				}
				peer := int(wire.NewDec(body).U16())
				if peer <= shard || peer >= k || dp.tcp[peer] != nil {
					errc <- fmt.Errorf("fednet: unexpected data-plane hello from shard %d", peer)
					return
				}
				dp.tcp[peer] = conn
			}
			errc <- nil
		}()
		go func() { // dial lower shards
			for j := 0; j < shard; j++ {
				conn, err := net.DialTimeout("tcp", addrs[j], timeout)
				if err != nil {
					errc <- fmt.Errorf("fednet: dial peer %d at %s: %w", j, addrs[j], err)
					return
				}
				var e wire.Enc
				e.U16(uint16(shard))
				if err := wire.WriteFrame(conn, wire.THello, e.Bytes()); err != nil {
					errc <- err
					return
				}
				dp.tcp[j] = conn
			}
			errc <- nil
		}()
		for i := 0; i < 2; i++ {
			if err := <-errc; err != nil {
				return nil, err
			}
		}
		for j, conn := range dp.tcp {
			if j == shard || conn == nil {
				continue
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(true)
			}
		}
		if recoverable {
			// Respawned higher shards re-dial this worker (the mesh keeps
			// its dial direction: i dials every j < i), so the listener
			// stays open and replacement connections are accepted for the
			// run's lifetime.
			dp.tcpLn = tcpLn
		}
	default:
		return nil, fmt.Errorf("fednet: unknown data plane %q", plane)
	}
	return dp, nil
}

// start launches the plane's reader goroutines (and the replacement-accept
// loop, when the listener stayed open). Split from openDataPlane so the
// caller can finish wiring — the recovery hook in particular — before any
// inbound frame can race it.
func (dp *dataPlane) start() {
	switch dp.plane {
	case DataUDP:
		dp.wg.Add(1)
		go dp.readUDP()
	case DataTCP:
		for j, conn := range dp.tcp {
			if j == dp.shard || conn == nil {
				continue
			}
			dp.wg.Add(1)
			go dp.readTCP(conn)
		}
		if dp.tcpLn != nil {
			dp.wg.Add(1)
			go dp.acceptReplacements()
		}
	}
}

// deliverFrame feeds one received data-plane frame into the collector.
// Both planes accept single-message (TData) and batched (TDataBatch)
// frames, so a `-batch=0` sender interoperates with any receiver. src is
// the datagram's source address on the UDP plane (nil on TCP): a recovery
// request's source IS the respawned peer's new endpoint.
func (dp *dataPlane) deliverFrame(typ uint8, body []byte, src *net.UDPAddr) error {
	switch typ {
	case wire.TData:
		m, tseq, err := decodeMsg(body)
		if err != nil {
			return err
		}
		dp.col.add(m, tseq)
		return nil
	case wire.TDataBatch:
		b, err := wire.DecodeDataBatch(body)
		if err != nil {
			return err
		}
		for i, d := range b.Msgs {
			m, err := liveMsg(int(b.Sender), d)
			if err != nil {
				return err
			}
			dp.col.add(m, b.TSeq0+uint64(i))
		}
		if b.Close != 0 {
			dp.col.noteClose(int(b.Sender), b.Close)
		}
		return nil
	case wire.TResend:
		// A respawned peer announces itself and asks for this worker's send
		// log. Handled here — on the reader goroutine — because the control
		// loop may be blocked in a barrier wait for the very messages the
		// recovery reconstructs.
		m, err := wire.DecodeResend(body)
		if err != nil {
			return err
		}
		if dp.onRecover == nil {
			return fmt.Errorf("fednet: recovery request from shard %d on a non-recoverable data plane", m.Peer)
		}
		return dp.onRecover(int(m.Peer), src)
	default:
		return fmt.Errorf("fednet: unexpected data-plane frame type %d", typ)
	}
}

func (dp *dataPlane) readUDP() {
	defer dp.wg.Done()
	n := 1 << 16
	if dp.maxDatagram > n {
		n = dp.maxDatagram
	}
	buf := make([]byte, n)
	for {
		n, src, err := dp.udp.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-dp.closed:
			default:
				dp.col.fail(fmt.Errorf("fednet: udp read: %w", err))
			}
			return
		}
		typ, body, err := wire.ParseFrame(buf[:n])
		if err != nil {
			dp.col.fail(fmt.Errorf("fednet: bad data datagram (%d bytes): %v", n, err))
			return
		}
		if err := dp.deliverFrame(typ, body, src); err != nil {
			dp.col.fail(err)
			return
		}
	}
}

func (dp *dataPlane) readTCP(conn net.Conn) {
	defer dp.wg.Done()
	for {
		typ, body, err := wire.ReadFrame(conn)
		if err != nil {
			select {
			case <-dp.closed:
			default:
				// In recoverable mode a broken peer connection is expected
				// (the peer died, or this conn was replaced by a rewire);
				// liveness is the coordinator's job, so the reader just
				// drains out instead of poisoning the collector.
				if !dp.recoverable {
					dp.col.fail(fmt.Errorf("fednet: tcp data read: %w", err))
				}
			}
			return
		}
		if err := dp.deliverFrame(typ, body, nil); err != nil {
			dp.col.fail(err)
			return
		}
	}
}

// acceptReplacements accepts TCP connections from respawned higher shards
// for the run's lifetime, swapping each into the peer's slot and starting a
// fresh reader. The old connection's reader drains out on its own (its read
// error is non-fatal in recoverable mode).
func (dp *dataPlane) acceptReplacements() {
	defer dp.wg.Done()
	for {
		conn, err := dp.tcpLn.Accept()
		if err != nil {
			return // listener closed at teardown
		}
		_ = conn.SetReadDeadline(time.Now().Add(dp.timeout))
		typ, body, err := wire.ReadFrame(conn)
		_ = conn.SetReadDeadline(time.Time{})
		if err != nil || typ != wire.THello || len(body) < 2 {
			conn.Close()
			continue
		}
		// Any peer but self: a respawned worker redials every peer
		// regardless of the initial mesh's dial direction.
		peer := int(wire.NewDec(body).U16())
		if peer == dp.shard || peer < 0 || peer >= len(dp.tcp) {
			conn.Close()
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		dp.endMu.Lock()
		old := dp.tcp[peer]
		dp.tcp[peer] = conn
		dp.endMu.Unlock()
		if old != nil {
			old.Close()
		}
		dp.wg.Add(1)
		go dp.readTCP(conn)
	}
}

// DefaultMaxDatagram is the default bound on one UDP data-plane frame:
// comfortably under the 65507-byte UDP payload ceiling, leaving room for
// the stack's own headers.
const DefaultMaxDatagram = 60 << 10

// maxTCPChunk bounds one batched frame on the TCP plane. The stream has no
// datagram limit, but bounding the chunk bounds both ends' buffering.
const maxTCPChunk = 1 << 20

// write puts one complete frame on the wire to peer j — a single syscall on
// the UDP plane — and maintains the frame/byte counters.
func (dp *dataPlane) write(j int, frame []byte) error {
	// Frame writes serialize: recovery resends run on reader goroutines,
	// concurrently with the control goroutine's sends.
	dp.wmu.Lock()
	defer dp.wmu.Unlock()
	dp.frames++
	dp.bytes += uint64(len(frame))
	if dp.plane == DataUDP {
		dp.endMu.Lock()
		peer := dp.udpPeers[j]
		dp.endMu.Unlock()
		// Barrier flushes burst; some kernels (macOS loopback notably)
		// answer a burst with transient ENOBUFS rather than blocking.
		// Back off briefly instead of failing the federation.
		for attempt := 0; ; attempt++ {
			_, err := dp.udp.WriteToUDP(frame, peer)
			if err == nil || !errors.Is(err, syscall.ENOBUFS) || attempt >= 50 {
				return dp.sendErr(err)
			}
			time.Sleep(time.Duration(attempt+1) * 100 * time.Microsecond)
		}
	}
	dp.endMu.Lock()
	conn := dp.tcp[j]
	dp.endMu.Unlock()
	_, err := conn.Write(frame)
	return dp.sendErr(err)
}

// sendErr maps a peer write error: fatal normally, swallowed in recoverable
// mode — the peer is presumed dead and the coordinator's liveness machinery
// (control-connection EOF, barrier timeouts) owns the diagnosis; messages
// the dead peer missed are replayed from the send log after its respawn.
func (dp *dataPlane) sendErr(err error) error {
	if err != nil && dp.recoverable {
		return nil
	}
	return err
}

// send transmits one tunnel message to peer shard j as the tseq-th message
// on the this-shard→j channel (the unbatched plane).
func (dp *dataPlane) send(j int, m parcore.Msg, tseq uint64) error {
	body, err := encodeMsg(m, tseq)
	if err != nil {
		return err
	}
	frame := wire.AppendFrame(nil, wire.TData, body)
	if dp.plane == DataUDP && len(frame) > dp.maxDatagram {
		return fmt.Errorf("fednet: %d-byte tunnel message exceeds the UDP data plane datagram bound (%d); use the tcp data plane", len(frame), dp.maxDatagram)
	}
	return dp.write(j, frame)
}

// batchOverhead is the fixed cost of one batched frame: the frame header
// plus the batch header (sender u16, tseq0 u64, close u64, count u32).
const batchOverhead = 6 + 2 + 8 + 8 + 4

// chunkBatch partitions pre-encoded batch elements into [start, end)
// ranges such that each range's frame fits under limit. With strict set
// (the UDP plane, where limit is a real datagram bound), a single element
// that cannot fit even alone is an error — the kernel would otherwise
// truncate or drop the datagram silently. Without strict (the TCP plane,
// where limit only bounds buffering), an oversized element simply gets a
// frame of its own.
func chunkBatch(elems [][]byte, limit int, strict bool) ([][2]int, error) {
	var ranges [][2]int
	start, size := 0, batchOverhead
	for i, el := range elems {
		if strict && batchOverhead+len(el) > limit {
			return nil, fmt.Errorf("fednet: %d-byte tunnel message exceeds the UDP data plane datagram bound (%d); raise MaxDatagram or use the tcp data plane", batchOverhead+len(el), limit)
		}
		if size+len(el) > limit && i > start {
			ranges = append(ranges, [2]int{start, i})
			start, size = i, batchOverhead
		}
		size += len(el)
	}
	if start < len(elems) {
		ranges = append(ranges, [2]int{start, len(elems)})
	}
	return ranges, nil
}

// sendBatch transmits a window's whole batch for peer shard j, elements
// carrying dense channel sequences tseq0, tseq0+1, ... — one frame (and on
// UDP one syscall) per chunk instead of one per message.
func (dp *dataPlane) sendBatch(j int, msgs []parcore.Msg, tseq0 uint64) error {
	elems := make([][]byte, len(msgs))
	for i, m := range msgs {
		d, err := wireMsg(m)
		if err != nil {
			return err
		}
		elems[i] = d.Encode()
	}
	return dp.sendElems(j, elems, tseq0, tseq0+uint64(len(elems))-1)
}

// sendElems transmits pre-encoded batch elements carrying dense channel
// sequences tseq0, tseq0+1, ...; the final chunk carries closeMark as the
// flush close marker (the cumulative channel count this flush reached).
func (dp *dataPlane) sendElems(j int, elems [][]byte, tseq0, closeMark uint64) error {
	limit, strict := maxTCPChunk, false
	if dp.plane == DataUDP {
		limit, strict = dp.maxDatagram, true
	}
	ranges, err := chunkBatch(elems, limit, strict)
	if err != nil {
		return err
	}
	for ri, r := range ranges {
		close := uint64(0)
		if ri == len(ranges)-1 {
			close = closeMark
		}
		body := wire.EncodeDataBatch(uint16(dp.shard), tseq0+uint64(r[0]), close, elems[r[0]:r[1]])
		if err := dp.write(j, wire.AppendFrame(nil, wire.TDataBatch, body)); err != nil {
			return err
		}
	}
	return nil
}

// resend retransmits this worker's entire send log for the this-shard→j
// channel from sequence 1 — the respawned peer's collector is lenient, so
// the prefix it already consumed is dropped on arrival and the lost suffix
// fills in. Always batched: the log's elements are already encoded.
func (dp *dataPlane) resend(j int, log [][]byte) error {
	if len(log) == 0 {
		return nil
	}
	return dp.sendElems(j, log, 1, uint64(len(log)))
}

// counters snapshots the wire-cost counters under the write lock.
func (dp *dataPlane) counters() (frames, bytes uint64) {
	dp.wmu.Lock()
	defer dp.wmu.Unlock()
	return dp.frames, dp.bytes
}

// recoverBroadcast announces this respawned worker to every peer: one
// TResend frame per peer, asking for its full send log. On the UDP plane
// the frame's source address doubles as the endpoint announcement; on TCP
// the redial already swapped the connections.
func (dp *dataPlane) recoverBroadcast() error {
	body := wire.Resend{Peer: uint32(dp.shard)}.Encode()
	for j := range dp.col.channels {
		if j == dp.shard {
			continue
		}
		if err := dp.write(j, wire.AppendFrame(nil, wire.TResend, body)); err != nil {
			return fmt.Errorf("fednet: recovery announce to shard %d: %w", j, err)
		}
	}
	return nil
}

// close tears the plane down; reader goroutines drain out.
func (dp *dataPlane) close() {
	close(dp.closed)
	if dp.tcpLn != nil {
		dp.tcpLn.Close()
	}
	if dp.udp != nil {
		dp.udp.Close()
	}
	for _, c := range dp.tcp {
		if c != nil {
			c.Close()
		}
	}
	dp.wg.Wait()
}
