package fednet

// The data plane: cross-core tunnel messages travel worker-to-worker over
// UDP datagrams (the paper's IP-in-UDP core tunnels) or a TCP mesh, never
// through the coordinator. Reliability is not required for correctness of
// ordering — the barrier applies messages in canonical (fire, sender, seq)
// order regardless of arrival order — but every counted message must
// eventually arrive, so the UDP plane is for the loss-free links of a
// cluster interconnect (or loopback) and TCP is the fallback everywhere
// else.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"modelnet/internal/fednet/wire"
	"modelnet/internal/parcore"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// collector accumulates decoded inbound tunnel messages per sender
// channel. The control loop blocks in wait until the barrier-announced
// prefix of every channel has arrived; readers feed it from socket
// goroutines. Selection is by each message's dense channel sequence
// number, so messages a peer sends for the *next* barrier round — already
// in flight while this worker still awaits the current one — sit in the
// buffer untouched instead of corrupting the round, and a duplicated
// datagram is detected rather than applied twice.
type collector struct {
	mu       sync.Mutex
	cond     *sync.Cond
	channels []channelBuf
	// closed[j] is sender j's latest flush close marker (the cumulative
	// channel count its last completed flush reached). Purely diagnostic:
	// when a wait times out, a channel whose close marker covers the
	// expectation but whose contiguous prefix does not has lost a datagram
	// in transit, and the error can say so.
	closed []uint64
	err    error
}

// channelBuf is one sender→me channel. Sequences are dense and 1-based,
// so readiness is a counter comparison: contig is the highest sequence
// with every message delivered+1..contig buffered, maintained in O(1)
// amortized as messages arrive (possibly out of order).
type channelBuf struct {
	buffered  map[uint64]parcore.Msg
	delivered uint64 // prefix already handed to the barrier
	contig    uint64 // prefix currently available
}

func newCollector(k int) *collector {
	c := &collector{channels: make([]channelBuf, k), closed: make([]uint64, k)}
	for j := range c.channels {
		c.channels[j].buffered = map[uint64]parcore.Msg{}
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) add(m parcore.Msg, tseq uint64) {
	c.mu.Lock()
	switch {
	case m.Sender < 0 || m.Sender >= len(c.channels):
		if c.err == nil {
			c.err = fmt.Errorf("fednet: data plane: message from out-of-range shard %d", m.Sender)
		}
	case tseq == 0:
		if c.err == nil {
			c.err = fmt.Errorf("fednet: data plane: zero channel sequence from shard %d", m.Sender)
		}
	default:
		ch := &c.channels[m.Sender]
		if _, dup := ch.buffered[tseq]; dup || tseq <= ch.delivered {
			if c.err == nil {
				c.err = fmt.Errorf("fednet: data plane: duplicate message %d from shard %d", tseq, m.Sender)
			}
			break
		}
		ch.buffered[tseq] = m
		for {
			if _, ok := ch.buffered[ch.contig+1]; !ok {
				break
			}
			ch.contig++
		}
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// noteClose records sender j's flush close marker (monotone cumulative).
func (c *collector) noteClose(sender int, close uint64) {
	c.mu.Lock()
	if sender >= 0 && sender < len(c.closed) && close > c.closed[sender] {
		c.closed[sender] = close
	}
	c.mu.Unlock()
}

func (c *collector) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// readyLocked reports whether, for every sender j, the full channel prefix
// (delivered[j], expect[j]] is buffered.
func (c *collector) readyLocked(expect []uint64) bool {
	for j, want := range expect {
		if c.channels[j].contig < want {
			return false
		}
	}
	return true
}

// wait blocks until the barrier's channel prefixes have all arrived, then
// extracts exactly those messages (later in-flight ones stay buffered).
// The timeout guards against a lost datagram or dead peer hanging the
// federation forever; a timer that fires in the instant the wait succeeds
// must not poison later rounds.
func (c *collector) wait(expect []uint64, timeout time.Duration) ([]parcore.Msg, error) {
	if len(expect) != len(c.channels) {
		return nil, fmt.Errorf("fednet: barrier names %d channels, data plane has %d", len(expect), len(c.channels))
	}
	done := false
	deadline := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		if !done && c.err == nil {
			// The close markers turn a silent stall into a diagnosis: a
			// sender whose last flush covered the expectation but whose
			// contiguous prefix fell short lost a datagram in transit.
			detail := ""
			for j, want := range expect {
				if ch := &c.channels[j]; ch.contig < want && c.closed[j] >= want {
					detail = fmt.Sprintf("; shard %d closed its flush at %d but only %d arrived contiguously — datagram lost in transit (use the tcp data plane)", j, c.closed[j], ch.contig)
					break
				}
			}
			c.err = fmt.Errorf("fednet: data plane: timed out after %v awaiting peer messages%s", timeout, detail)
		}
		c.mu.Unlock()
		c.cond.Broadcast()
	})
	defer deadline.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil && !c.readyLocked(expect) {
		c.cond.Wait()
	}
	done = true
	if c.err != nil {
		return nil, c.err
	}
	var msgs []parcore.Msg
	for j, want := range expect {
		ch := &c.channels[j]
		if want <= ch.delivered {
			continue // already handed out (coordinator counters are monotonic)
		}
		for t := ch.delivered + 1; t <= want; t++ {
			msgs = append(msgs, ch.buffered[t])
			delete(ch.buffered, t)
		}
		ch.delivered = want
	}
	return msgs, nil
}

// dataPlane sends encoded tunnel messages to peers and feeds received ones
// into the collector.
type dataPlane struct {
	plane string
	shard int

	// maxDatagram bounds one UDP data-plane frame (header included);
	// batches are chunked under it, and a single message that cannot fit
	// fails the run instead of being silently truncated by the kernel.
	maxDatagram int

	udp      *net.UDPConn
	udpPeers []*net.UDPAddr

	tcp []net.Conn // per peer shard; nil at own index

	col    *collector
	closed chan struct{}
	wg     sync.WaitGroup

	// Wire-cost counters, maintained by the sending (control) goroutine.
	frames uint64 // data-plane frames written (= syscalls on the UDP plane)
	bytes  uint64 // bytes handed to the sockets, framing included
}

// decodeMsg converts a received data frame into a parcore message plus its
// channel sequence.
func decodeMsg(body []byte) (parcore.Msg, uint64, error) {
	d, err := wire.DecodeData(body)
	if err != nil {
		return parcore.Msg{}, 0, err
	}
	m, err := liveMsg(int(d.Sender), wire.DataMsg{
		Seq: d.Seq, Kind: d.Kind, Pid: d.Pid,
		At: d.At, Lag: d.Lag, Fire: d.Fire, Pkt: d.Pkt,
	})
	if err != nil {
		return parcore.Msg{}, 0, err
	}
	return m, d.TSeq, nil
}

// liveMsg reconstructs a parcore message from one decoded batch element.
func liveMsg(sender int, d wire.DataMsg) (parcore.Msg, error) {
	pkt, err := d.Pkt.Packet()
	if err != nil {
		return parcore.Msg{}, err
	}
	return parcore.Msg{
		Pkt:    pkt,
		Pid:    pipes.ID(d.Pid),
		At:     vtime.Time(d.At),
		Lag:    vtime.Duration(d.Lag),
		Fire:   vtime.Time(d.Fire),
		Sender: sender,
		Seq:    d.Seq,
	}, nil
}

// wireMsg converts an outbound parcore message to its wire form (the batch
// element; Sender and the channel sequence live in the enclosing frame).
func wireMsg(m parcore.Msg) (wire.DataMsg, error) {
	pw, err := wire.EncodePacket(m.Pkt)
	if err != nil {
		return wire.DataMsg{}, err
	}
	kind := wire.KindTunnel
	if m.Pid < 0 {
		kind = wire.KindDelivery
	}
	return wire.DataMsg{
		Seq:  m.Seq,
		Kind: kind,
		Pid:  int32(m.Pid),
		At:   int64(m.At),
		Lag:  int64(m.Lag),
		Fire: int64(m.Fire),
		Pkt:  pw,
	}, nil
}

// encodeMsg converts an outbound parcore message into a single-message data
// frame body (the unbatched plane).
func encodeMsg(m parcore.Msg, tseq uint64) ([]byte, error) {
	d, err := wireMsg(m)
	if err != nil {
		return nil, err
	}
	return wire.Data{
		Sender: uint16(m.Sender),
		Seq:    d.Seq,
		TSeq:   tseq,
		Kind:   d.Kind,
		Pid:    d.Pid,
		At:     d.At,
		Lag:    d.Lag,
		Fire:   d.Fire,
		Pkt:    d.Pkt,
	}.Encode(), nil
}

// openDataPlane wires this worker to its peers. UDP: everyone already has a
// bound socket; peers are just addresses. TCP: workers form a full mesh —
// shard i dials every j < i (identifying itself with a hello frame) and
// accepts a connection from every j > i.
func openDataPlane(plane string, shard int, addrs []string, udp *net.UDPConn, tcpLn net.Listener, col *collector, timeout time.Duration, maxDatagram int) (*dataPlane, error) {
	k := len(addrs)
	if maxDatagram <= 0 {
		maxDatagram = DefaultMaxDatagram
	}
	dp := &dataPlane{plane: plane, shard: shard, maxDatagram: maxDatagram, col: col, closed: make(chan struct{})}
	switch plane {
	case DataUDP:
		dp.udp = udp
		dp.udpPeers = make([]*net.UDPAddr, k)
		for j, a := range addrs {
			if j == shard {
				continue
			}
			ua, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return nil, fmt.Errorf("fednet: peer %d udp addr %q: %w", j, a, err)
			}
			dp.udpPeers[j] = ua
		}
		// A window's handoffs burst at the barrier; buffer enough that the
		// kernel never sheds a counted datagram before the reader drains it.
		_ = udp.SetReadBuffer(8 << 20)
		_ = udp.SetWriteBuffer(8 << 20)
		dp.wg.Add(1)
		go dp.readUDP()
	case DataTCP:
		dp.tcp = make([]net.Conn, k)
		errc := make(chan error, 2)
		go func() { // accept from higher shards
			for j := shard + 1; j < k; j++ {
				conn, err := tcpLn.Accept()
				if err != nil {
					errc <- err
					return
				}
				typ, body, err := wire.ReadFrame(conn)
				if err != nil || typ != wire.THello || len(body) < 2 {
					errc <- fmt.Errorf("fednet: bad data-plane hello: %v", err)
					return
				}
				peer := int(wire.NewDec(body).U16())
				if peer <= shard || peer >= k || dp.tcp[peer] != nil {
					errc <- fmt.Errorf("fednet: unexpected data-plane hello from shard %d", peer)
					return
				}
				dp.tcp[peer] = conn
			}
			errc <- nil
		}()
		go func() { // dial lower shards
			for j := 0; j < shard; j++ {
				conn, err := net.DialTimeout("tcp", addrs[j], timeout)
				if err != nil {
					errc <- fmt.Errorf("fednet: dial peer %d at %s: %w", j, addrs[j], err)
					return
				}
				var e wire.Enc
				e.U16(uint16(shard))
				if err := wire.WriteFrame(conn, wire.THello, e.Bytes()); err != nil {
					errc <- err
					return
				}
				dp.tcp[j] = conn
			}
			errc <- nil
		}()
		for i := 0; i < 2; i++ {
			if err := <-errc; err != nil {
				return nil, err
			}
		}
		for j, conn := range dp.tcp {
			if j == shard || conn == nil {
				continue
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(true)
			}
			dp.wg.Add(1)
			go dp.readTCP(conn)
		}
	default:
		return nil, fmt.Errorf("fednet: unknown data plane %q", plane)
	}
	return dp, nil
}

// deliverFrame feeds one received data-plane frame into the collector.
// Both planes accept single-message (TData) and batched (TDataBatch)
// frames, so a `-batch=0` sender interoperates with any receiver.
func (dp *dataPlane) deliverFrame(typ uint8, body []byte) error {
	switch typ {
	case wire.TData:
		m, tseq, err := decodeMsg(body)
		if err != nil {
			return err
		}
		dp.col.add(m, tseq)
		return nil
	case wire.TDataBatch:
		b, err := wire.DecodeDataBatch(body)
		if err != nil {
			return err
		}
		for i, d := range b.Msgs {
			m, err := liveMsg(int(b.Sender), d)
			if err != nil {
				return err
			}
			dp.col.add(m, b.TSeq0+uint64(i))
		}
		if b.Close != 0 {
			dp.col.noteClose(int(b.Sender), b.Close)
		}
		return nil
	default:
		return fmt.Errorf("fednet: unexpected data-plane frame type %d", typ)
	}
}

func (dp *dataPlane) readUDP() {
	defer dp.wg.Done()
	n := 1 << 16
	if dp.maxDatagram > n {
		n = dp.maxDatagram
	}
	buf := make([]byte, n)
	for {
		n, _, err := dp.udp.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-dp.closed:
			default:
				dp.col.fail(fmt.Errorf("fednet: udp read: %w", err))
			}
			return
		}
		typ, body, err := wire.ParseFrame(buf[:n])
		if err != nil {
			dp.col.fail(fmt.Errorf("fednet: bad data datagram (%d bytes): %v", n, err))
			return
		}
		if err := dp.deliverFrame(typ, body); err != nil {
			dp.col.fail(err)
			return
		}
	}
}

func (dp *dataPlane) readTCP(conn net.Conn) {
	defer dp.wg.Done()
	for {
		typ, body, err := wire.ReadFrame(conn)
		if err != nil {
			select {
			case <-dp.closed:
			default:
				dp.col.fail(fmt.Errorf("fednet: tcp data read: %w", err))
			}
			return
		}
		if err := dp.deliverFrame(typ, body); err != nil {
			dp.col.fail(err)
			return
		}
	}
}

// DefaultMaxDatagram is the default bound on one UDP data-plane frame:
// comfortably under the 65507-byte UDP payload ceiling, leaving room for
// the stack's own headers.
const DefaultMaxDatagram = 60 << 10

// maxTCPChunk bounds one batched frame on the TCP plane. The stream has no
// datagram limit, but bounding the chunk bounds both ends' buffering.
const maxTCPChunk = 1 << 20

// write puts one complete frame on the wire to peer j — a single syscall on
// the UDP plane — and maintains the frame/byte counters.
func (dp *dataPlane) write(j int, frame []byte) error {
	dp.frames++
	dp.bytes += uint64(len(frame))
	if dp.plane == DataUDP {
		// Barrier flushes burst; some kernels (macOS loopback notably)
		// answer a burst with transient ENOBUFS rather than blocking.
		// Back off briefly instead of failing the federation.
		for attempt := 0; ; attempt++ {
			_, err := dp.udp.WriteToUDP(frame, dp.udpPeers[j])
			if err == nil || !errors.Is(err, syscall.ENOBUFS) || attempt >= 50 {
				return err
			}
			time.Sleep(time.Duration(attempt+1) * 100 * time.Microsecond)
		}
	}
	_, err := dp.tcp[j].Write(frame)
	return err
}

// send transmits one tunnel message to peer shard j as the tseq-th message
// on the this-shard→j channel (the unbatched plane).
func (dp *dataPlane) send(j int, m parcore.Msg, tseq uint64) error {
	body, err := encodeMsg(m, tseq)
	if err != nil {
		return err
	}
	frame := wire.AppendFrame(nil, wire.TData, body)
	if dp.plane == DataUDP && len(frame) > dp.maxDatagram {
		return fmt.Errorf("fednet: %d-byte tunnel message exceeds the UDP data plane datagram bound (%d); use the tcp data plane", len(frame), dp.maxDatagram)
	}
	return dp.write(j, frame)
}

// batchOverhead is the fixed cost of one batched frame: the frame header
// plus the batch header (sender u16, tseq0 u64, close u64, count u32).
const batchOverhead = 6 + 2 + 8 + 8 + 4

// chunkBatch partitions pre-encoded batch elements into [start, end)
// ranges such that each range's frame fits under limit. With strict set
// (the UDP plane, where limit is a real datagram bound), a single element
// that cannot fit even alone is an error — the kernel would otherwise
// truncate or drop the datagram silently. Without strict (the TCP plane,
// where limit only bounds buffering), an oversized element simply gets a
// frame of its own.
func chunkBatch(elems [][]byte, limit int, strict bool) ([][2]int, error) {
	var ranges [][2]int
	start, size := 0, batchOverhead
	for i, el := range elems {
		if strict && batchOverhead+len(el) > limit {
			return nil, fmt.Errorf("fednet: %d-byte tunnel message exceeds the UDP data plane datagram bound (%d); raise MaxDatagram or use the tcp data plane", batchOverhead+len(el), limit)
		}
		if size+len(el) > limit && i > start {
			ranges = append(ranges, [2]int{start, i})
			start, size = i, batchOverhead
		}
		size += len(el)
	}
	if start < len(elems) {
		ranges = append(ranges, [2]int{start, len(elems)})
	}
	return ranges, nil
}

// sendBatch transmits a window's whole batch for peer shard j, elements
// carrying dense channel sequences tseq0, tseq0+1, ... — one frame (and on
// UDP one syscall) per chunk instead of one per message.
func (dp *dataPlane) sendBatch(j int, msgs []parcore.Msg, tseq0 uint64) error {
	elems := make([][]byte, len(msgs))
	for i, m := range msgs {
		d, err := wireMsg(m)
		if err != nil {
			return err
		}
		elems[i] = d.Encode()
	}
	limit, strict := maxTCPChunk, false
	if dp.plane == DataUDP {
		limit, strict = dp.maxDatagram, true
	}
	ranges, err := chunkBatch(elems, limit, strict)
	if err != nil {
		return err
	}
	for ri, r := range ranges {
		// The final chunk carries the flush close marker: the cumulative
		// channel count this flush reached.
		close := uint64(0)
		if ri == len(ranges)-1 {
			close = tseq0 + uint64(len(msgs)) - 1
		}
		body := wire.EncodeDataBatch(uint16(dp.shard), tseq0+uint64(r[0]), close, elems[r[0]:r[1]])
		if err := dp.write(j, wire.AppendFrame(nil, wire.TDataBatch, body)); err != nil {
			return err
		}
	}
	return nil
}

// close tears the plane down; reader goroutines drain out.
func (dp *dataPlane) close() {
	close(dp.closed)
	if dp.udp != nil {
		dp.udp.Close()
	}
	for _, c := range dp.tcp {
		if c != nil {
			c.Close()
		}
	}
	dp.wg.Wait()
}
