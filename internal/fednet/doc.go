// Package fednet is the multi-process core federation runtime: it runs each
// parcore shard in its own OS process — and hence, with remote workers, on
// its own machine — connected by real sockets, the deployment shape of the
// paper's core cluster (emulated core routers on separate physical machines
// exchanging cross-core packets as tunnel traffic).
//
// A federated run has one coordinator and Cores workers:
//
//   - The coordinator (Run) builds the target topology, distills it, and
//     partitions the pipes; it then distributes the distilled topology,
//     assignment, and scenario over a TCP control plane and drives the same
//     conservative synchronization loop as the in-process runtime
//     (parcore.Drive) through a socket-backed parcore.Transport.
//   - Each worker (Worker, usually entered via the `modelnet core`
//     subcommand or the self-exec spawn helper) deterministically rebuilds
//     its shard — binding, shard emulator, homed VN hosts, workload — from
//     the distributed state, and exchanges cross-core tunnel messages with
//     its peers directly over a UDP (or TCP-fallback) data plane.
//
// The scheduler never learns whether its peer is a goroutine or a socket:
// parcore.Drive sees only the Transport. That is what extends PR 1's
// determinism contract to federation — with the same seed, a 1-process
// sequential run, an N-goroutine parallel run, and an N-process federated
// run produce identical counters and delivery times (under an event-exact
// profile; see DESIGN.md §3 for the contract's scope).
//
// A federation can also open itself to the outside world: Options.Edge
// leases a live edge gateway (internal/edge) to the workers — real UDP
// sockets mapped onto ingress VNs — and Options.RealTime paces the
// synchronization loop against the wall clock so external, unmodified
// processes observe the emulated topology's latency and loss in real time.
// Live traffic trades the byte-identical replay guarantee for model-bounded
// accuracy; DESIGN.md §4 states exactly which guarantees survive.
package fednet
