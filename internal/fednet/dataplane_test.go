package fednet

// White-box data-plane tests: batch chunking under the datagram bound, a
// real two-socket UDP loopback exchange of a chunked batch, and the
// oversized-datagram regression (a frame the kernel would silently truncate
// or drop must instead fail the run loudly).

import (
	"net"
	"strings"
	"testing"
	"time"

	"modelnet/internal/parcore"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

func TestChunkBatchRespectsLimit(t *testing.T) {
	mk := func(sizes ...int) [][]byte {
		elems := make([][]byte, len(sizes))
		for i, n := range sizes {
			elems[i] = make([]byte, n)
		}
		return elems
	}
	ranges, err := chunkBatch(mk(100, 100, 100, 100), batchOverhead+250, true)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 2}, {2, 4}}
	if len(ranges) != 2 || ranges[0] != want[0] || ranges[1] != want[1] {
		t.Fatalf("ranges %v, want %v", ranges, want)
	}
	// A single element exactly at the bound fits alone.
	ranges, err = chunkBatch(mk(250, 1), batchOverhead+250, true)
	if err != nil || len(ranges) != 2 {
		t.Fatalf("ranges %v err %v", ranges, err)
	}
	// One byte over the bound is an error on the strict (UDP) plane — not
	// a truncated datagram.
	if _, err := chunkBatch(mk(251), batchOverhead+250, true); err == nil {
		t.Fatal("oversized element accepted on the strict plane")
	}
	// On the stream (TCP) plane the bound only shapes chunks: an oversized
	// element gets a frame of its own, neighbors keep theirs.
	ranges, err = chunkBatch(mk(100, 500, 100, 100), batchOverhead+250, false)
	if err != nil {
		t.Fatalf("oversized element rejected on the stream plane: %v", err)
	}
	want = [][2]int{{0, 1}, {1, 2}, {2, 4}}
	if len(ranges) != 3 || ranges[0] != want[0] || ranges[1] != want[1] || ranges[2] != want[2] {
		t.Fatalf("stream ranges %v, want %v", ranges, want)
	}
	// Empty input produces no frames.
	if ranges, err := chunkBatch(nil, 1000, true); err != nil || len(ranges) != 0 {
		t.Fatalf("empty batch: ranges %v err %v", ranges, err)
	}
}

// testMsg builds a small cross-shard tunnel message.
func testMsg(seq uint64, routeLen int) parcore.Msg {
	route := make([]pipes.ID, routeLen)
	for i := range route {
		route[i] = pipes.ID(i)
	}
	return parcore.Msg{
		Pkt: &pipes.Packet{
			Seq: seq, Size: 100, Src: 1, Dst: 2, Route: route, Hop: 0,
			Injected: vtime.Time(7),
		},
		Pid:    0,
		At:     vtime.Time(10),
		Fire:   vtime.Time(12),
		Sender: 0,
		Seq:    seq,
	}
}

// openUDPPair wires two UDP data planes over loopback with the given
// datagram bound and returns shard 0's plane and shard 1's collector.
func openUDPPair(t *testing.T, maxDatagram int) (*dataPlane, *dataPlane, *collector) {
	t.Helper()
	socks := make([]*net.UDPConn, 2)
	addrs := make([]string, 2)
	for i := range socks {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		socks[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	col0, col1 := newCollector(2), newCollector(2)
	dp0, err := openDataPlane(DataUDP, 0, addrs, socks[0], nil, col0, time.Second, maxDatagram, false, false)
	if err != nil {
		t.Fatal(err)
	}
	dp0.start()
	t.Cleanup(dp0.close)
	dp1, err := openDataPlane(DataUDP, 1, addrs, socks[1], nil, col1, time.Second, maxDatagram, false, false)
	if err != nil {
		t.Fatal(err)
	}
	dp1.start()
	t.Cleanup(dp1.close)
	return dp0, dp1, col1
}

func TestSendBatchChunksAndDelivers(t *testing.T) {
	dp0, _, col1 := openUDPPair(t, 1024)
	const n = 100
	msgs := make([]parcore.Msg, n)
	for i := range msgs {
		msgs[i] = testMsg(uint64(i+1), 3)
	}
	if err := dp0.sendBatch(1, msgs, 1); err != nil {
		t.Fatal(err)
	}
	if dp0.frames <= 1 {
		t.Fatalf("expected the batch to chunk into multiple frames, got %d", dp0.frames)
	}
	if dp0.frames >= n {
		t.Fatalf("batching degenerated to one frame per message (%d frames for %d messages)", dp0.frames, n)
	}
	got, err := col1.wait([]uint64{n, 0}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d of %d messages", len(got), n)
	}
	for i, m := range got {
		if m.Seq != uint64(i+1) || m.Sender != 0 || m.Pkt.Seq != uint64(i+1) {
			t.Fatalf("message %d out of order or corrupt: %+v", i, m)
		}
	}
}

func TestSendBatchRejectsOversizedMessage(t *testing.T) {
	dp0, _, _ := openUDPPair(t, 1024)
	// A route of 1000 pipes encodes to ~4 KB — over the 1 KB bound, and
	// impossible to chunk because it is a single message.
	err := dp0.sendBatch(1, []parcore.Msg{testMsg(1, 1000)}, 1)
	if err == nil {
		t.Fatal("oversized single message accepted on the UDP plane")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("error does not name the bound: %v", err)
	}
	if dp0.frames != 0 {
		t.Fatalf("%d frames written despite the error", dp0.frames)
	}
	// The unbatched plane enforces the same bound.
	if err := dp0.send(1, testMsg(1, 1000), 1); err == nil {
		t.Fatal("oversized single message accepted by the unbatched plane")
	}
}

func TestSendBatchRespectsConfiguredBound(t *testing.T) {
	// The same message set that fails at 1 KB passes with the bound raised.
	dp0, _, col1 := openUDPPair(t, 16<<10)
	if err := dp0.sendBatch(1, []parcore.Msg{testMsg(1, 1000)}, 1); err != nil {
		t.Fatalf("message under the raised bound rejected: %v", err)
	}
	got, err := col1.wait([]uint64{1, 0}, 5*time.Second)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d messages, err %v", len(got), err)
	}
	if len(got[0].Pkt.Route) != 1000 {
		t.Fatalf("route truncated to %d hops", len(got[0].Pkt.Route))
	}
}
