package fednet

// The coordinator side of a federation: build and partition the topology,
// distribute it, then drive parcore.Drive through a Transport whose shards
// answer over TCP. The coordinator owns no shard — it is the paper's
// deploy-and-synchronize machinery, not an emulation participant.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/distill"
	"modelnet/internal/dynamics"
	"modelnet/internal/edge"
	"modelnet/internal/emucore"
	"modelnet/internal/fednet/wire"
	"modelnet/internal/obs"
	"modelnet/internal/parcore"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// rerouteHorizon is the virtual-time span over which the reroute epoch
// schedule is enumerated; coordinator and workers must use the same one so
// their epoch numbering agrees. Runs to quiescence enumerate everything.
func rerouteHorizon(runFor vtime.Duration) vtime.Duration {
	if runFor <= 0 {
		return vtime.Duration(vtime.Forever)
	}
	return runFor
}

// Options configure a federated run.
type Options struct {
	// Scenario names a registered Scenario; Params is marshaled to JSON
	// and handed to its Build and Install hooks.
	Scenario string
	Params   any

	// Cores is the number of worker processes (= emulated core routers);
	// at least 2.
	Cores int
	// Seed determinizes assignment, loss, and scenario randomness,
	// exactly as modelnet.Options.Seed does.
	Seed int64
	// Profile models the core hardware; nil = emucore.DefaultProfile().
	// Use an event-exact profile (IdealProfile) for the cross-mode
	// determinism guarantee and eager windows.
	Profile *emucore.Profile
	// Distill selects the distillation mode (zero value = hop-by-hop).
	Distill distill.Spec
	// EdgeNodes, RouteCache, Hierarchical mirror modelnet.Options.
	EdgeNodes    int
	RouteCache   int
	Hierarchical bool

	// RunFor is the virtual time to emulate. Zero or negative runs to
	// global quiescence.
	RunFor vtime.Duration

	// Sync selects the synchronization algebra: adaptive per-shard window
	// grants derived from the cluster's queue horizon (the default), or the
	// fixed uniform-lookahead windows kept as the measurement baseline and
	// escape hatch (CLI: -sync=fixed). Local-only runs additionally fuse the
	// three per-window control round trips (flush, sync, window) into one
	// TStep round; live-edge and real-time runs keep the split protocol,
	// because gateway admission must precede the bounds grants derive from.
	Sync parcore.SyncMode

	// Dynamics, when non-nil, is the link-dynamics spec: the coordinator
	// validates it against the distilled topology and ships it bit-exact
	// to every worker, which replays it against its own pipe set exactly
	// as the sequential and in-process modes do.
	Dynamics *dynamics.Spec

	// Listen is the control-plane address (default "127.0.0.1:0"; use
	// ":port" to accept workers from other machines).
	Listen string
	// DataPlane selects how workers exchange tunnel messages: DataUDP
	// (default; the paper's IP-in-UDP tunnels) or DataTCP (lossless
	// fallback for links that may drop datagrams).
	DataPlane string
	// NoBatch reverts the data plane to one frame (and one syscall) per
	// tunnel message. By default each window's messages per peer coalesce
	// into MTU-bounded MsgBatch frames, which is what makes cross-core
	// cost per-window instead of per-packet; this is the escape hatch
	// (CLI: -batch=0).
	NoBatch bool
	// MaxDatagram bounds one UDP data-plane frame in bytes, batches
	// chunked to fit. 0 means DefaultMaxDatagram; a single message larger
	// than the bound fails the run loudly (the kernel would otherwise
	// truncate or drop the datagram silently).
	MaxDatagram int
	// Spawn, when true, re-executes the current binary Cores times as
	// local workers (MaybeRunWorker must run early in its main). When
	// false the coordinator waits for externally started `modelnet core
	// -join` workers.
	Spawn bool
	// CollectDeliveries has every worker record each delivery's virtual
	// time; the merged sample lands in Report.Deliveries (the cross-mode
	// determinism probe).
	CollectDeliveries bool

	// Edge, when non-nil, is the live edge gateway lease distributed to
	// every worker: real UDP sockets at the emulation's boundary, mapped
	// onto ingress VNs (internal/edge). Each worker instantiates only the
	// mappings homed on its shard; the bound real addresses are reported
	// through OnLive. Live runs usually also want RealTime.
	Edge *edge.GatewayConfig
	// RealTime slaves window release to the wall clock (parcore.Pacing):
	// virtual nanoseconds map 1:1 onto wall nanoseconds, the paper's
	// 10 kHz-timer role. Required for live edge traffic to experience
	// emulated delays in real time; requires a finite RunFor.
	RealTime bool
	// Pace is the real-time pacing quantum (0 = parcore.DefaultPaceQuantum).
	Pace vtime.Duration
	// OnLive, when non-nil, runs once every worker is set up — before the
	// clock starts — with each shard's gateway address ("" for shards
	// without one). This is how a live client learns where to send.
	OnLive func(gatewayAddrs []string)
	// Timeout bounds every blocking protocol step (default
	// DefaultTimeout).
	Timeout time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)

	// Recover arms checkpoint/restart fault tolerance: every worker keeps
	// its send log, the coordinator logs each barrier round and collects
	// per-shard state digests every CkptEvery step rounds, and a worker
	// whose control connection dies mid-run is respawned and replayed back
	// to the crash point instead of failing the run. Requires Spawn (the
	// coordinator owns the respawn) and the fused step protocol (no live
	// edge, no real-time pacing — wall-clock state cannot be replayed).
	Recover bool
	// CkptEvery is the checkpoint period in step rounds (default
	// DefaultCkptEvery). Checkpoints are determinism anchors: a recovering
	// replay's digest is byte-compared against the stored blob.
	CkptEvery int
	// CkptDir, when non-empty, persists each shard's latest checkpoint
	// blob under it (shard-N.ckpt); empty keeps blobs in memory only.
	CkptDir string
	// MaxRecoveries bounds worker respawns per run (default
	// DefaultMaxRecoveries); the run fails once exhausted.
	MaxRecoveries int
	// FailSpec, when non-nil, plants a fault: worker Shard dies at step
	// round Round (the crash-sweep harness). Requires the fused step
	// protocol; sigkill mode additionally requires Spawn.
	FailSpec *FailSpec

	// Trace has every worker record a virtual-time packet trace and stream
	// it back over wire.TTrace; the merged result lands in Report.Trace.
	Trace bool
	// MetricsListen, when non-empty, binds a live metrics HTTP endpoint
	// (obs.Metrics: Prometheus text at /metrics) on the coordinator at the
	// given host:port, and has every worker bind one on loopback; worker
	// addresses land in Report.WorkerMetricsAddrs.
	MetricsListen string
}

func (o *Options) defaults() error {
	if o.Scenario == "" {
		return fmt.Errorf("fednet: Options.Scenario is required")
	}
	if o.Cores < 2 {
		return fmt.Errorf("fednet: federation needs at least 2 cores, got %d", o.Cores)
	}
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.DataPlane == "" {
		o.DataPlane = DataUDP
	}
	if o.DataPlane != DataUDP && o.DataPlane != DataTCP {
		return fmt.Errorf("fednet: unknown data plane %q", o.DataPlane)
	}
	if o.MaxDatagram == 0 {
		o.MaxDatagram = DefaultMaxDatagram
	}
	if o.MaxDatagram < 512 || o.MaxDatagram > 65000 {
		return fmt.Errorf("fednet: MaxDatagram %d outside [512, 65000]", o.MaxDatagram)
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.RealTime && o.RunFor <= 0 {
		return fmt.Errorf("fednet: RealTime pacing needs a finite RunFor (a paced run's only exit is its deadline)")
	}
	if o.Edge != nil && len(o.Edge.Maps) == 0 {
		return fmt.Errorf("fednet: Edge gateway lease has no mappings")
	}
	if o.Recover {
		if o.Edge != nil || o.RealTime {
			return fmt.Errorf("fednet: Recover requires the fused step protocol (no live edge, no real-time pacing)")
		}
		if !o.Spawn {
			return fmt.Errorf("fednet: Recover requires Spawn (the coordinator respawns dead workers)")
		}
		if o.CkptEvery == 0 {
			o.CkptEvery = DefaultCkptEvery
		}
		if o.CkptEvery < 0 {
			return fmt.Errorf("fednet: CkptEvery %d is not a period", o.CkptEvery)
		}
		if o.MaxRecoveries == 0 {
			o.MaxRecoveries = DefaultMaxRecoveries
		}
	}
	if fs := o.FailSpec; fs != nil {
		if o.Edge != nil || o.RealTime {
			return fmt.Errorf("fednet: FailSpec requires the fused step protocol (no live edge, no real-time pacing)")
		}
		if fs.Shard < 0 || fs.Shard >= o.Cores || fs.Round < 1 {
			return fmt.Errorf("fednet: FailSpec kills shard %d of %d at round %d", fs.Shard, o.Cores, fs.Round)
		}
		switch fs.Mode {
		case "", FailExit:
		case FailSigkill:
			if !o.Spawn {
				return fmt.Errorf("fednet: sigkill fault injection needs Spawn (the coordinator signals its own children)")
			}
		default:
			return fmt.Errorf("fednet: unknown FailSpec mode %q", fs.Mode)
		}
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return nil
}

// Report is a federated run's aggregated outcome.
type Report struct {
	Cores     int
	DataPlane string

	// Totals and Accuracy merge every worker's counters, comparably to
	// Emulation.Totals / AccuracyStats in the other modes.
	Totals   emucore.Totals
	Accuracy emucore.Accuracy
	// Sync counts barrier activity; Messages is the number of cross-core
	// tunnel messages that crossed real sockets.
	Sync parcore.SyncStats
	// Frames and BytesOnWire sum the workers' data-plane costs: frames
	// written (= syscalls on the UDP plane) and bytes with framing. The
	// batched plane keeps Frames an order of magnitude under
	// Sync.Messages; the unbatched plane has Frames == Sync.Messages.
	Frames      uint64
	BytesOnWire uint64
	// Lookahead and Cut describe the partition the run synchronized under;
	// SyncMode is the algebra the coordinator drove with.
	Lookahead vtime.Duration
	Cut       assign.CutStats
	SyncMode  parcore.SyncMode
	// WallMS is the coordinator-measured wall-clock time of the Run
	// phase (excluding topology build and worker setup).
	WallMS float64
	// Recoveries counts mid-run worker respawns (Options.Recover);
	// RecoveryWallNs is their total wall-clock cost, replay included.
	Recoveries     int
	RecoveryWallNs int64
	// GatewayAddrs are the per-shard live gateway addresses ("" for
	// shards without one) and Edge the merged gateway counters, when the
	// run carried a gateway lease.
	GatewayAddrs []string
	Edge         edge.GatewayStats
	// Deliveries merges the per-worker delivery-time samples (seconds),
	// when CollectDeliveries was set. Order is by shard, then by each
	// shard's delivery order; sort before comparing across modes.
	Deliveries []float64
	// PipeDrops sums the workers' per-pipe drop counters elementwise,
	// indexed by pipe ID — comparable across execution modes (each mode
	// materializes every pipe, so the vector shape is mode-independent).
	PipeDrops []uint64
	// DropsByReason sums the workers' unified drop-taxonomy vectors
	// (indexed by pipes.DropReason), gateway rejections included.
	DropsByReason []uint64
	// Trace is the merged packet trace, when Options.Trace was set.
	Trace *obs.Trace
	// MetricsAddr and WorkerMetricsAddrs are the bound metrics endpoints,
	// when Options.MetricsListen was set.
	MetricsAddr        string
	WorkerMetricsAddrs []string
	// Workers holds each worker's full report, by shard.
	Workers []WorkerReport
}

// RunProfile flattens the report's synchronization profile into the
// -profile-out artifact shape.
func (r *Report) RunProfile() obs.RunProfile {
	p := obs.RunProfile{
		Mode:           "fednet",
		Cores:          r.Cores,
		WallMS:         r.WallMS,
		Windows:        r.Sync.Windows,
		SerialRounds:   r.Sync.SerialRounds,
		Messages:       r.Sync.Messages,
		SyncMode:       r.SyncMode.String(),
		GrantMinMS:     r.Sync.GrantMin().Seconds() * 1000,
		GrantMeanMS:    r.Sync.GrantMean().Seconds() * 1000,
		GrantMaxMS:     r.Sync.GrantMax().Seconds() * 1000,
		Drive:          r.Sync.Profile,
		Recoveries:     r.Recoveries,
		RecoveryWallMS: float64(r.RecoveryWallNs) / 1e6,
	}
	for _, w := range r.Workers {
		p.Shards = append(p.Shards, w.Profile)
	}
	return p
}

// Run executes a federated emulation end to end and aggregates the worker
// reports. See Options for the knobs.
func Run(opts Options) (*Report, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	scen, err := lookupScenario(opts.Scenario)
	if err != nil {
		return nil, err
	}
	var params json.RawMessage
	if opts.Params != nil {
		params, err = json.Marshal(opts.Params)
		if err != nil {
			return nil, fmt.Errorf("fednet: scenario params: %w", err)
		}
	}

	// CREATE / DISTILL / ASSIGN on the coordinator; workers receive the
	// results rather than re-deriving them.
	target, err := scen.Build(params)
	if err != nil {
		return nil, fmt.Errorf("fednet: scenario %q build: %w", opts.Scenario, err)
	}
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("fednet: create: %w", err)
	}
	dist, err := distill.Distill(target, opts.Distill)
	if err != nil {
		return nil, fmt.Errorf("fednet: distill: %w", err)
	}
	asn, err := assign.KClusters(dist.Graph, opts.Cores, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("fednet: assign: %w", err)
	}
	prof := emucore.DefaultProfile()
	if opts.Profile != nil {
		prof = *opts.Profile
	}

	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("fednet: listen %s: %w", opts.Listen, err)
	}
	defer ln.Close()
	opts.Log("fednet: coordinating %d cores on %s (%s data plane, scenario %q)",
		opts.Cores, ln.Addr(), opts.DataPlane, opts.Scenario)

	var spawned []*spawnedWorker
	if opts.Spawn {
		spawned, err = SpawnWorkers(opts.Cores, ln.Addr().String())
		if err != nil {
			return nil, err
		}
	}
	defer stopWorkers(spawned)

	conns, hellos, err := acceptWorkers(ln, opts)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Distribute: shard i is the i-th worker to join.
	addrs := make([]string, opts.Cores)
	for i, h := range hellos {
		if opts.DataPlane == DataUDP {
			addrs[i] = h.UDPAddr
		} else {
			addrs[i] = h.TCPAddr
		}
	}
	// Shard indices follow join order, not launch order: permute the spawned
	// slice (in place — deferred cleanup shares it) so spawned[i] is shard
	// i's process, which is what fault injection and recovery must target.
	if len(spawned) > 0 {
		byPid := make(map[int]*spawnedWorker, len(spawned))
		for _, w := range spawned {
			byPid[w.cmd.Process.Pid] = w
		}
		for i, h := range hellos {
			w, ok := byPid[h.Pid]
			if !ok {
				return nil, fmt.Errorf("fednet: shard %d joined with unknown pid %d", i, h.Pid)
			}
			spawned[i] = w
		}
	}
	if err := opts.Dynamics.Validate(dist.Graph.NumLinks()); err != nil {
		return nil, fmt.Errorf("fednet: %w", err)
	}
	dynBin := dynamics.Encode(opts.Dynamics)
	// Sharded distribution is the default: each worker receives only its
	// shard view (owned links + cut frontier) and the VN world map, so
	// per-worker setup and memory scale with the shard, not the world. Live
	// edge runs keep the monolithic path — a gateway worker may host ingress
	// VNs whose flows it must resolve globally at admission time.
	sharded := opts.Edge == nil && asn.NodeOwner != nil
	// The piggybacked protocol and the adaptive algebra both need the
	// reaction-chain matrix, which the coordinator derives from the same
	// bind/plan computation every worker performs on its copy of the state.
	piggy := opts.Edge == nil && !opts.RealTime
	var chain [][]vtime.Duration
	var bnd *bind.Binding
	var homes []int
	pod := bind.NewPOD(asn.Owner, asn.Cores)
	if sharded || piggy || opts.Sync == parcore.SyncAdaptive {
		// Under sharded distribution the coordinator's binding exists for VN
		// numbering and sync plans, never bulk routes — demand-paged tables
		// replace the O(n²) matrix.
		bnd, err = bind.Bind(dist.Graph, bind.Options{
			EdgeNodes:    opts.EdgeNodes,
			Cores:        asn.Cores,
			RouteCache:   opts.RouteCache,
			Hierarchical: opts.Hierarchical,
			LazyRoutes:   sharded,
		})
		if err != nil {
			return nil, fmt.Errorf("fednet: bind: %w", err)
		}
		homes = parcore.Homes(dist.Graph, bnd, pod, opts.Cores)
		if piggy || opts.Sync == parcore.SyncAdaptive {
			syncs := parcore.ComputeSyncPlan(dist.Graph, bnd, pod, homes, opts.Cores, opts.Dynamics.LatencyFloorFunc())
			chain = parcore.ChainMatrix(syncs)
		}
	}
	var oracle *bind.SummaryOracle
	var summaries [][]topology.NodeID
	// cfgFor closes over the mutable addrs slice: a respawned worker's
	// regenerated setup carries the fleet's *current* endpoints (DataAddrs
	// only feed openDataPlane, never the deterministic emulation state, so a
	// replayed setup differing there is sound).
	cfgFor := func(i int) ([]byte, error) {
		return json.Marshal(setup{
			Shard: i, Cores: opts.Cores, Seed: opts.Seed, Profile: prof,
			DataPlane: opts.DataPlane, DataAddrs: addrs,
			NoBatch: opts.NoBatch, MaxDatagram: opts.MaxDatagram,
			EdgeNodes: opts.EdgeNodes, RouteCache: opts.RouteCache, Hierarchical: opts.Hierarchical,
			Scenario: opts.Scenario, Params: params, CollectDeliveries: opts.CollectDeliveries,
			Edge: opts.Edge, Trace: opts.Trace, Metrics: opts.MetricsListen != "",
			Sync: opts.Sync.String(), Sharded: sharded, RunForNs: int64(opts.RunFor),
			Recoverable: opts.Recover,
		})
	}
	// sendSetup distributes one shard's setup over its control conn; Run
	// uses it for the initial boot, recovery reuses it verbatim to rebuild a
	// respawned worker (the blobs are precomputed once, outside the closure).
	var sendSetup func(i int, c net.Conn) error
	if sharded {
		views, err := bind.BuildShardViews(dist.Graph, asn.Owner, asn.NodeOwner, asn.Cores)
		if err != nil {
			return nil, fmt.Errorf("fednet: shard views: %w", err)
		}
		downSets, err := dynamics.EnumerateReroutes(opts.Dynamics, dist.Graph.NumLinks(), rerouteHorizon(opts.RunFor))
		if err != nil {
			return nil, fmt.Errorf("fednet: %w", err)
		}
		oracle = bind.NewSummaryOracle(dist.Graph, func(epoch int32) ([]topology.LinkID, error) {
			if int(epoch) >= len(downSets) {
				return nil, fmt.Errorf("fednet: reroute epoch %d outside the enumerated schedule (%d epochs)", epoch, len(downSets))
			}
			return downSets[epoch], nil
		}, 0, 0)
		world := wire.World{VNHome: make([]int32, bnd.NumVNs()), Homes: make([]int32, bnd.NumVNs())}
		for v, n := range bnd.VNHome {
			world.VNHome[v] = int32(n)
			world.Homes[v] = int32(homes[v])
		}
		worldBin := wire.EncodeWorld(world)
		summaries = make([][]topology.NodeID, opts.Cores)
		viewBins := make([][]byte, opts.Cores)
		for i := range views {
			viewBins[i] = wire.EncodeShardView(views[i])
			summaries[i] = views[i].Summary
		}
		sendSetup = func(i int, c net.Conn) error {
			cfgJSON, err := cfgFor(i)
			if err != nil {
				return err
			}
			for _, sec := range []struct {
				id   uint8
				blob []byte
			}{
				{wire.SecConfig, cfgJSON}, {wire.SecView, viewBins[i]},
				{wire.SecWorld, worldBin}, {wire.SecDynamics, dynBin},
			} {
				for _, ch := range wire.Chunks(sec.id, sec.blob) {
					if err := wire.WriteFrame(c, wire.TSetupChunk, ch.Encode()); err != nil {
						return fmt.Errorf("fednet: setup shard %d: %w", i, err)
					}
				}
			}
			return nil
		}
		for i, c := range conns {
			if err := sendSetup(i, c); err != nil {
				return nil, err
			}
			opts.Log("fednet: shard %d view: %d of %d links, %d frontier nodes, %d summary nodes",
				i, len(views[i].Links), dist.Graph.NumLinks(), len(views[i].Frontier), len(views[i].Summary))
		}
	} else {
		topoBin := wire.EncodeTopology(dist.Graph)
		asnBin := wire.EncodeAssignment(asn.Owner, asn.Cores)
		sendSetup = func(i int, c net.Conn) error {
			cfgJSON, err := cfgFor(i)
			if err != nil {
				return err
			}
			var e wire.Enc
			e.Blob(cfgJSON)
			e.Blob(topoBin)
			e.Blob(asnBin)
			e.Blob(dynBin) // empty = no dynamics
			if err := wire.WriteFrame(c, wire.TSetup, e.Bytes()); err != nil {
				return fmt.Errorf("fednet: setup shard %d: %w", i, err)
			}
			return nil
		}
		for i, c := range conns {
			if err := sendSetup(i, c); err != nil {
				return nil, err
			}
		}
	}
	var metrics *obs.Metrics
	var metricsAddr string
	if opts.MetricsListen != "" {
		metrics = obs.NewMetrics("coordinator", -1)
		addr, closeMetrics, err := metrics.Serve(opts.MetricsListen)
		if err != nil {
			return nil, fmt.Errorf("fednet: metrics listen %s: %w", opts.MetricsListen, err)
		}
		defer closeMetrics() //nolint:errcheck
		metricsAddr = addr
		opts.Log("fednet: coordinator metrics on http://%s/metrics", addr)
	}
	tr := &coordTransport{
		conns: conns, timeout: opts.Timeout, metrics: metrics, piggy: piggy, chain: chain,
		oracle: oracle, summaries: summaries, spawned: spawned,
	}
	tr.init(opts.Cores)
	if opts.Recover {
		if opts.CkptDir != "" {
			if err := os.MkdirAll(opts.CkptDir, 0o755); err != nil {
				return nil, fmt.Errorf("fednet: checkpoint dir: %w", err)
			}
		}
		tr.rec = &recoveryState{
			ln: ln, join: ln.Addr().String(), timeout: opts.Timeout,
			spawned: spawned, addrs: addrs, dataPlane: opts.DataPlane,
			sendSetup: sendSetup, log: opts.Log,
			ckptEvery: opts.CkptEvery, ckptDir: opts.CkptDir,
			maxRecoveries: opts.MaxRecoveries,
			ckpts:         make([][]byte, opts.Cores), ckptRound: -1,
		}
	}
	if fs := opts.FailSpec; fs != nil && fs.Mode == FailSigkill {
		tr.killRound, tr.killShard = fs.Round, fs.Shard
	}
	gatewayAddrs := make([]string, opts.Cores)
	workerMetrics := make([]string, opts.Cores)
	for i := range conns {
		typ, body, err := tr.read(i)
		if err != nil {
			return nil, err
		}
		if typ != wire.TSetupAck {
			return nil, fmt.Errorf("fednet: shard %d: expected setup ack, got frame type %d (%q)", i, typ, body)
		}
		if len(body) > 0 {
			var ack setupAck
			if err := json.Unmarshal(body, &ack); err != nil {
				return nil, fmt.Errorf("fednet: shard %d setup ack: %w", i, err)
			}
			gatewayAddrs[i] = ack.GatewayAddr
			workerMetrics[i] = ack.MetricsAddr
			if ack.MetricsAddr != "" {
				opts.Log("fednet: shard %d metrics on http://%s/metrics", i, ack.MetricsAddr)
			}
		}
	}
	if fs := opts.FailSpec; fs != nil && (fs.Mode == "" || fs.Mode == FailExit) {
		// Arm exit-mode fault injection once, on the first boot only: the
		// directive is deliberately outside the logged rounds, so recovery
		// never replays the crash it is recovering from.
		body := wire.Fail{Round: uint32(fs.Round)}.Encode()
		if err := wire.WriteFrame(conns[fs.Shard], wire.TFail, body); err != nil {
			return nil, err
		}
	}
	opts.Log("fednet: all %d shards up, running", opts.Cores)
	if opts.Edge != nil {
		live := 0
		for i, a := range gatewayAddrs {
			if a != "" {
				live++
				opts.Log("fednet: shard %d gateway listening on %s", i, a)
			}
		}
		if live == 0 {
			return nil, fmt.Errorf("fednet: gateway lease granted but no worker homes a mapped ingress VN")
		}
	}
	if opts.OnLive != nil {
		opts.OnLive(append([]string(nil), gatewayAddrs...))
	}

	deadline := vtime.Forever
	if opts.RunFor > 0 {
		deadline = vtime.Time(0).Add(opts.RunFor)
	}
	// Cut describes the partition the run synchronized under, so when link
	// dynamics can lower a cut pipe's latency mid-run the stats are taken
	// over the profile floors — the same rule the workers derive their
	// window bounds from (parcore.ComputeSyncFloor).
	cutGraph := dist.Graph
	if opts.Dynamics != nil {
		cutGraph = dist.Graph.Clone()
		for i := range cutGraph.Links {
			l := &cutGraph.Links[i]
			l.Attr.LatencySec = opts.Dynamics.FloorLatency(l.ID, vtime.DurationOf(l.Attr.LatencySec)).Seconds()
		}
	}
	rep := &Report{
		Cores: opts.Cores, DataPlane: opts.DataPlane,
		Cut:                asn.CutStats(cutGraph),
		GatewayAddrs:       gatewayAddrs,
		MetricsAddr:        metricsAddr,
		WorkerMetricsAddrs: workerMetrics,
	}
	var pace *parcore.Pacing
	begin := time.Now()
	if opts.RealTime {
		pace = &parcore.Pacing{Quantum: opts.Pace}
		tr.paceEpoch = begin
	}
	if err := parcore.DriveWith(tr, &rep.Sync, deadline, parcore.DriveOpts{
		Pace: pace, Mode: opts.Sync, Chain: chain,
	}); err != nil {
		return nil, err
	}
	rep.WallMS = float64(time.Since(begin).Microseconds()) / 1000
	rep.Sync.Messages = tr.messages
	if tr.rec != nil {
		rep.Recoveries = tr.rec.recoveries
		rep.RecoveryWallNs = tr.rec.recoveryWallNs
	}

	for i := range conns {
		if err := wire.WriteFrame(conns[i], wire.TFinish, nil); err != nil {
			return nil, err
		}
	}
	rep.Workers = make([]WorkerReport, opts.Cores)
	var traceEvents []obs.Event
	for i := range conns {
		// A worker streams zero or more TTrace chunks, then its TReport.
		var typ uint8
		var body []byte
		for {
			typ, body, err = tr.read(i)
			if err != nil {
				return nil, err
			}
			if typ != wire.TTrace {
				break
			}
			evs, err := decodeTraceChunk(body)
			if err != nil {
				return nil, fmt.Errorf("fednet: shard %d: %w", i, err)
			}
			traceEvents = append(traceEvents, evs...)
		}
		if typ != wire.TReport {
			return nil, fmt.Errorf("fednet: shard %d: expected report, got frame type %d", i, typ)
		}
		var wr WorkerReport
		if err := json.Unmarshal(body, &wr); err != nil {
			return nil, fmt.Errorf("fednet: shard %d report: %w", i, err)
		}
		rep.Workers[i] = wr
		rep.Frames += wr.Frames
		rep.BytesOnWire += wr.BytesOnWire
		rep.Totals.Injected += wr.Totals.Injected
		rep.Totals.Delivered += wr.Totals.Delivered
		rep.Totals.NoRoute += wr.Totals.NoRoute
		rep.Totals.PhysDrops += wr.Totals.PhysDrops
		rep.Totals.VirtualDrops += wr.Totals.VirtualDrops
		rep.Totals.InFlight += wr.Totals.InFlight
		rep.Accuracy.Merge(wr.Accuracy)
		rep.Deliveries = append(rep.Deliveries, wr.Deliveries...)
		if len(wr.PipeDrops) > len(rep.PipeDrops) {
			rep.PipeDrops = append(rep.PipeDrops, make([]uint64, len(wr.PipeDrops)-len(rep.PipeDrops))...)
		}
		for p, n := range wr.PipeDrops {
			rep.PipeDrops[p] += n
		}
		if len(wr.DropsByReason) > len(rep.DropsByReason) {
			rep.DropsByReason = append(rep.DropsByReason, make([]uint64, len(wr.DropsByReason)-len(rep.DropsByReason))...)
		}
		for r, n := range wr.DropsByReason {
			rep.DropsByReason[r] += n
		}
		if wr.Edge != nil {
			rep.Edge.Merge(*wr.Edge)
		}
	}
	if opts.Trace {
		rep.Trace = obs.FromEvents(traceEvents)
	}
	// CutStats' minimum cut latency is the cluster-granularity analog of
	// parcore.Runtime.Lookahead.
	rep.Lookahead = rep.Cut.Lookahead
	rep.SyncMode = opts.Sync
	if err := waitWorkers(spawned); err != nil {
		return nil, err
	}
	return rep, nil
}

// acceptWorkers admits Cores workers and reads their hello frames.
func acceptWorkers(ln net.Listener, opts Options) ([]net.Conn, []hello, error) {
	conns := make([]net.Conn, 0, opts.Cores)
	hellos := make([]hello, 0, opts.Cores)
	fail := func(err error) ([]net.Conn, []hello, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, nil, err
	}
	for len(conns) < opts.Cores {
		c, h, err := acceptOne(ln, opts.Timeout)
		if err != nil {
			return fail(fmt.Errorf("fednet: waiting for workers (%d of %d joined): %w", len(conns), opts.Cores, err))
		}
		conns = append(conns, c)
		hellos = append(hellos, h)
		opts.Log("fednet: shard %d joined from %s", len(conns)-1, c.RemoteAddr())
	}
	return conns, hellos, nil
}

// acceptOne admits one worker: accept its control connection and read its
// hello frame, both under the timeout.
func acceptOne(ln net.Listener, timeout time.Duration) (net.Conn, hello, error) {
	if dl, ok := ln.(*net.TCPListener); ok {
		_ = dl.SetDeadline(time.Now().Add(timeout))
	}
	c, err := ln.Accept()
	if err != nil {
		return nil, hello{}, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	_ = c.SetReadDeadline(time.Now().Add(timeout))
	typ, body, err := wire.ReadFrame(c)
	if err != nil || typ != wire.THello {
		c.Close()
		return nil, hello{}, fmt.Errorf("fednet: bad join (frame type %d): %v", typ, err)
	}
	var h hello
	if err := json.Unmarshal(body, &h); err != nil {
		c.Close()
		return nil, hello{}, fmt.Errorf("fednet: bad hello: %w", err)
	}
	return c, h, nil
}

// coordTransport is the socket-backed parcore.Transport: each call is one
// broadcast round on the control plane. Cumulative per-peer send counters
// reported by workers let the barrier tell every worker exactly how many
// data-plane messages to await, which is what makes the protocol immune to
// datagram reordering.
type coordTransport struct {
	conns   []net.Conn
	timeout time.Duration

	// metrics, when non-nil, is the coordinator's live endpoint; it is
	// updated at barrier boundaries (the only points where worker-reported
	// state is coherent).
	metrics *obs.Metrics
	// flushWallNs accumulates the wall time of Exchange's flush half, so
	// parcore's drive profile can split barrier cost into flush vs sync.
	flushWallNs uint64

	// piggy selects the fused TStep protocol: flush + sync + window in one
	// control round trip per window instead of three. Window performs the
	// round; Exchange consumes the bounds it saved. Live-edge and real-time
	// runs keep the split rounds — a gateway must admit real-world arrivals
	// before the bounds its grants derive from are computed.
	piggy bool
	// chain is the reaction-chain matrix (parcore.DriveOpts.Chain); the
	// piggy protocol compensates pre-apply bounds with it.
	chain [][]vtime.Duration
	// saved holds each worker's bounds from the last TStepDone round; nil
	// when stale (before the first barrier, after a drain), which forces a
	// bounds-only step. Saved bounds predate the application of messages
	// still in flight toward the worker — Exchange compensates.
	saved []parcore.Bounds
	// lastGrants[j] is the last bound worker j ran (or drained) through: by
	// earliest-output-time safety, no message still in flight toward j can
	// fire before it.
	lastGrants []vtime.Time
	// acked[j] sums the expectation vector last sent to worker j; every
	// message counted there has been awaited and applied. The gap to the
	// senders' cumulative counters is j's in-flight message count.
	acked []uint64

	// oracle and summaries serve demand-paged route summaries under sharded
	// distribution: a worker that misses a destination in its ShardTable
	// sends TRouteReq on the control conn; read answers inline, so the RPC
	// is always served while the coordinator awaits that worker's next
	// protocol reply (a worker only pages routes while running its window).
	oracle    *bind.SummaryOracle
	summaries [][]topology.NodeID

	// rec, when non-nil, is the checkpoint/restart engine (Options.Recover):
	// it logs every barrier round, stores checkpoint digests, and replays a
	// respawned worker back to the crash point. stepIdx numbers step rounds
	// 1-based — the checkpoint cadence and fault injection count in it.
	rec     *recoveryState
	stepIdx int
	// killRound/killShard arm sigkill-mode fault injection: at the start of
	// step round killRound, the coordinator SIGKILLs killShard's process.
	// Zero killRound = disarmed (also after firing).
	killRound int
	killShard int
	spawned   []*spawnedWorker

	sent     [][]uint64 // [worker][peer] cumulative sends, last reported
	messages uint64
	// floor is the maximum virtual clock any worker has reported: the
	// flush round broadcasts it so live edge gateways can stamp ingress
	// admissions at a time no peer shard has already passed. Under
	// real-time pacing it additionally tracks the wall clock (paceEpoch
	// set), so an ingress stamp is never earlier than its arrival's wall
	// time even when the emulation lags the wall clock — which is what
	// makes an external observer's measured delays respect the model
	// unconditionally.
	floor     vtime.Time
	paceEpoch time.Time // zero unless the run is wall-clock paced
}

func (t *coordTransport) init(k int) {
	t.sent = make([][]uint64, k)
	for i := range t.sent {
		t.sent[i] = make([]uint64, k)
	}
	t.lastGrants = make([]vtime.Time, k)
	t.acked = make([]uint64, k)
}

func sumCounts(v []uint64) uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

// inflight reports how many data-plane messages addressed to worker j have
// been reported sent but not yet covered by an expectation round.
func (t *coordTransport) inflight(j int) uint64 {
	var s uint64
	for i := range t.conns {
		s += t.sent[i][j]
	}
	return s - t.acked[j]
}

// fedSatAdd offsets t by d, saturating at Forever (parcore's satAdd).
func fedSatAdd(t vtime.Time, d vtime.Duration) vtime.Time {
	if t == vtime.Forever || d == 0 {
		return t
	}
	s := t.Add(d)
	if s < t {
		return vtime.Forever
	}
	return s
}

// expectFor is the channel-prefix vector worker i must have received:
// expectFor(i)[j] is the cumulative count of messages shard j has reported
// sending to i.
func (t *coordTransport) expectFor(i int) []uint64 {
	v := make([]uint64, len(t.conns))
	for j := range t.conns {
		v[j] = t.sent[j][i]
	}
	return v
}

// Cores implements parcore.Transport.
func (t *coordTransport) Cores() int { return len(t.conns) }

// read reads one control frame from worker i, surfacing worker errors.
// Route-summary RPCs (TRouteReq) are served inline: the worker blocks on the
// response mid-window, and the coordinator is by construction reading worker
// i's conn whenever worker i can be running — so the RPC never deadlocks.
func (t *coordTransport) read(i int) (uint8, []byte, error) {
	c := t.conns[i]
	for {
		if err := c.SetReadDeadline(time.Now().Add(t.timeout)); err != nil {
			return 0, nil, err
		}
		typ, body, err := wire.ReadFrame(c)
		if err != nil {
			// A conn-level failure is the liveness signal for a dead worker:
			// typed so the recovery machinery (when armed) can catch it and
			// respawn instead of failing the run.
			return 0, nil, &shardDeadError{shard: i, cause: err}
		}
		switch typ {
		case wire.TError:
			return 0, nil, fmt.Errorf("fednet: shard %d failed: %s", i, body)
		case wire.TRouteReq:
			if t.oracle == nil {
				return 0, nil, fmt.Errorf("fednet: shard %d paged a route summary but the run is not sharded", i)
			}
			m, err := wire.DecodeRouteReq(body)
			if err != nil {
				return 0, nil, fmt.Errorf("fednet: shard %d route req: %w", i, err)
			}
			dists, err := t.oracle.Seeds(m.Epoch, topology.NodeID(m.Target), t.summaries[i])
			if err != nil {
				return 0, nil, fmt.Errorf("fednet: shard %d route req (epoch %d, target %d): %w", i, m.Epoch, m.Target, err)
			}
			resp := wire.RouteResp{Epoch: m.Epoch, Target: m.Target, Dists: dists}
			if err := wire.WriteFrame(c, wire.TRouteResp, resp.Encode()); err != nil {
				return 0, nil, fmt.Errorf("fednet: shard %d route resp: %w", i, err)
			}
		default:
			return typ, body, nil
		}
	}
}

// update folds worker i's cumulative send counters into the expectation
// vector.
func (t *coordTransport) update(i int, sent []uint64) error {
	if len(sent) != len(t.conns) {
		return fmt.Errorf("fednet: shard %d reported %d peer counters, want %d", i, len(sent), len(t.conns))
	}
	for j, s := range sent {
		prev := t.sent[i][j]
		if s < prev {
			return fmt.Errorf("fednet: shard %d send counter to %d went backwards (%d -> %d)", i, j, prev, s)
		}
		t.messages += s - prev
		t.sent[i][j] = s
	}
	return nil
}

// collectCounts reads one counts-bearing reply of the given type from every
// worker.
func (t *coordTransport) collectCounts(want uint8) error {
	for i := range t.conns {
		typ, body, err := t.read(i)
		if err != nil {
			return err
		}
		if typ != want {
			return fmt.Errorf("fednet: shard %d: expected frame type %d, got %d", i, want, typ)
		}
		m, err := wire.DecodeCounts(body)
		if err != nil {
			return err
		}
		if vtime.Time(m.Now) > t.floor {
			t.floor = vtime.Time(m.Now)
		}
		if err := t.update(i, m.Sent); err != nil {
			return err
		}
	}
	return nil
}

// Exchange implements parcore.Transport. On the split protocol a flush
// round moves every pending message onto the sockets and settles the
// expectation counters, then a sync round has every worker await, apply,
// and report bounds. On the piggy protocol the bounds were already reported
// by the last step round; Exchange compensates them for in-flight traffic
// and returns without touching the network (a bounds-only step round fills
// in when no bounds are saved yet).
func (t *coordTransport) Exchange() ([]parcore.Bounds, error) {
	if t.piggy {
		if t.saved == nil {
			// First barrier or post-drain: run a bounds-only step. It also
			// settles every reported send — the expectation vector covers
			// them all — so the bounds it returns need no compensation.
			if err := t.stepRound(nil); err != nil {
				return nil, err
			}
		}
		return t.compensated(), nil
	}
	f0 := time.Now()
	floor := t.floor
	if !t.paceEpoch.IsZero() {
		if w := vtime.Time(time.Since(t.paceEpoch)); w > floor {
			floor = w
		}
	}
	flushBody := wire.Flush{Floor: int64(floor)}.Encode()
	for i := range t.conns {
		if err := wire.WriteFrame(t.conns[i], wire.TFlush, flushBody); err != nil {
			return nil, err
		}
	}
	if err := t.collectCounts(wire.TFlushDone); err != nil {
		return nil, err
	}
	t.flushWallNs += uint64(time.Since(f0))
	for i := range t.conns {
		expect := t.expectFor(i)
		if err := wire.WriteFrame(t.conns[i], wire.TSync, wire.Sync{Expect: expect}.Encode()); err != nil {
			return nil, err
		}
		t.acked[i] = sumCounts(expect)
	}
	bs := make([]parcore.Bounds, len(t.conns))
	for i := range t.conns {
		typ, body, err := t.read(i)
		if err != nil {
			return nil, err
		}
		if typ != wire.TReady {
			return nil, fmt.Errorf("fednet: shard %d: expected ready, got frame type %d", i, typ)
		}
		m, err := wire.DecodeReady(body)
		if err != nil {
			return nil, err
		}
		bs[i] = boundsOf(m.Next, m.Safe, m.SafeTo, len(t.conns))
	}
	return bs, nil
}

// boundsOf assembles a parcore.Bounds from wire integers; a SafeTo vector
// of the wrong arity (a fixed-algebra worker reports none) is dropped.
func boundsOf(next, safe int64, safeTo []int64, k int) parcore.Bounds {
	b := parcore.Bounds{Next: vtime.Time(next), Safe: vtime.Time(safe)}
	if len(safeTo) == k {
		b.SafeTo = make([]vtime.Time, k)
		for j, s := range safeTo {
			b.SafeTo[j] = vtime.Time(s)
		}
	}
	return b
}

// stepRound is one fused barrier round: every worker awaits its expectation
// prefix, applies its inbox, runs through its grant (nil grants: bounds
// only), flushes its outbox, and replies with counts plus its post-step
// bounds, which land in saved.
func (t *coordTransport) stepRound(grants []vtime.Time) error {
	k := len(t.conns)
	t.stepIdx++
	if t.killRound > 0 && t.stepIdx == t.killRound {
		// Sigkill-mode fault injection: a real, unannounced process death at
		// the round's edge, racing the round's own frames.
		t.killRound = 0
		if w := t.spawned[t.killShard]; w != nil && w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
	}
	ckpt := t.rec != nil && t.stepIdx%t.rec.ckptEvery == 0
	bodies := make([][]byte, k)
	for i := 0; i < k; i++ {
		g := int64(-1)
		if grants != nil {
			g = int64(grants[i])
		}
		expect := t.expectFor(i)
		bodies[i] = wire.Step{Floor: int64(t.floor), Grant: g, Expect: expect, Ckpt: ckpt}.Encode()
		t.acked[i] = sumCounts(expect)
	}
	replies, err := t.round(wire.TStep, wire.TStepDone, bodies, ckpt)
	if err != nil {
		return err
	}
	if t.saved == nil {
		t.saved = make([]parcore.Bounds, k)
	}
	for i, body := range replies {
		m, err := wire.DecodeStepDone(body)
		if err != nil {
			return err
		}
		if vtime.Time(m.Counts.Now) > t.floor {
			t.floor = vtime.Time(m.Counts.Now)
		}
		if err := t.update(i, m.Counts.Sent); err != nil {
			return err
		}
		t.saved[i] = boundsOf(m.Next, m.Safe, m.SafeTo, k)
	}
	return nil
}

// round runs one logged barrier round: write bodies[i] to every worker,
// read one doneTyp reply (plus a TCheckpoint digest when ckpt) from each,
// and — when recovery is armed — respawn and replay any worker whose
// connection died, then log the round for future replays. The returned
// replies are by shard.
func (t *coordTransport) round(reqTyp, doneTyp uint8, bodies [][]byte, ckpt bool) ([][]byte, error) {
	k := len(t.conns)
	var failed []int
	for i := 0; i < k; i++ {
		if err := wire.WriteFrame(t.conns[i], reqTyp, bodies[i]); err != nil {
			if t.rec == nil {
				return nil, fmt.Errorf("fednet: shard %d: %w", i, err)
			}
			failed = append(failed, i)
		}
	}
	replies := make([][]byte, k)
	ckpts := make([][]byte, k)
	for i := 0; i < k; i++ {
		if hasInt(failed, i) {
			continue // already marked dead at write time
		}
		body, ck, err := t.readDone(i, doneTyp, ckpt)
		if err != nil {
			var dead *shardDeadError
			if t.rec != nil && errors.As(err, &dead) {
				failed = append(failed, i)
				continue
			}
			return nil, err
		}
		replies[i], ckpts[i] = body, ck
	}
	// Every live worker has finished the round (its barrier wait only needed
	// the previous round's flush data, which predates any death this round);
	// the dead ones are respawned, replayed through the logged prefix, and
	// then served this round's body afresh.
	for _, i := range failed {
		if err := t.rec.recover(t, i); err != nil {
			return nil, err
		}
		if err := wire.WriteFrame(t.conns[i], reqTyp, bodies[i]); err != nil {
			return nil, fmt.Errorf("fednet: shard %d: respawn write: %w", i, err)
		}
		body, ck, err := t.readDone(i, doneTyp, ckpt)
		if err != nil {
			return nil, fmt.Errorf("fednet: shard %d: after recovery: %w", i, err)
		}
		replies[i], ckpts[i] = body, ck
	}
	if t.rec != nil {
		t.rec.logRound(reqTyp, bodies, replies, ckpt, ckpts)
	}
	return replies, nil
}

// readDone reads worker i's round reply, and its checkpoint digest when the
// round asked for one.
func (t *coordTransport) readDone(i int, doneTyp uint8, ckpt bool) (reply, ckptBlob []byte, err error) {
	typ, body, err := t.read(i)
	if err != nil {
		return nil, nil, err
	}
	if typ != doneTyp {
		return nil, nil, fmt.Errorf("fednet: shard %d: expected frame type %d, got %d", i, doneTyp, typ)
	}
	if ckpt {
		typ2, blob, err := t.read(i)
		if err != nil {
			return nil, nil, err
		}
		if typ2 != wire.TCheckpoint {
			return nil, nil, fmt.Errorf("fednet: shard %d: expected checkpoint, got frame type %d", i, typ2)
		}
		if _, err := wire.DecodeCheckpoint(blob); err != nil {
			return nil, nil, fmt.Errorf("fednet: shard %d checkpoint: %w", i, err)
		}
		ckptBlob = blob
	}
	return body, ckptBlob, nil
}

func hasInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// compensated returns the saved bounds adjusted for in-flight messages. A
// step's bounds predate the application of anything still in flight toward
// that worker; by earliest-output-time safety such a message fires no
// earlier than the worker's last grant, so the worker's bounds are lowered
// to that floor — its next event may be the application itself, and the
// emissions that application provokes toward peer l can fire no earlier
// than floor + chain[j][l].
func (t *coordTransport) compensated() []parcore.Bounds {
	k := len(t.conns)
	bs := make([]parcore.Bounds, k)
	for j := 0; j < k; j++ {
		b := t.saved[j]
		if b.SafeTo != nil {
			b.SafeTo = append([]vtime.Time(nil), b.SafeTo...)
		}
		if t.inflight(j) > 0 {
			fl := t.lastGrants[j]
			if b.Next > fl {
				b.Next = fl
			}
			if b.SafeTo != nil {
				for l := 0; l < k; l++ {
					if l == j {
						continue
					}
					if v := fedSatAdd(fl, t.chain[j][l]); v < b.SafeTo[l] {
						b.SafeTo[l] = v
					}
				}
				s := vtime.Forever
				for _, v := range b.SafeTo {
					if v < s {
						s = v
					}
				}
				b.Safe = s
			} else {
				mc := vtime.Duration(0)
				if t.chain != nil {
					first := true
					for l := 0; l < k; l++ {
						if l == j {
							continue
						}
						if first || t.chain[j][l] < mc {
							mc = t.chain[j][l]
							first = false
						}
					}
				}
				if v := fedSatAdd(fl, mc); v < b.Safe {
					b.Safe = v
				}
			}
		}
		bs[j] = b
	}
	return bs
}

// FlushWallNs reports the accumulated wall time of flush rounds; parcore's
// drive profiler subtracts it from the barrier total.
func (t *coordTransport) FlushWallNs() uint64 { return t.flushWallNs }

// Window implements parcore.Transport: all workers run their shards
// concurrently, shard i through grants[i] — this is where federation buys
// real parallelism. On the piggy protocol the window rides the fused step
// round (one control round trip covers await, apply, run, and flush).
func (t *coordTransport) Window(grants []vtime.Time) error {
	if t.piggy {
		if err := t.stepRound(grants); err != nil {
			return err
		}
	} else {
		for i := range t.conns {
			if err := wire.WriteFrame(t.conns[i], wire.TWindow, wire.Window{Bound: int64(grants[i])}.Encode()); err != nil {
				return err
			}
		}
		if err := t.collectCounts(wire.TWindowDone); err != nil {
			return err
		}
	}
	for i, g := range grants {
		if g > t.lastGrants[i] {
			t.lastGrants[i] = g
		}
	}
	t.metrics.AddWindows(1)
	t.metrics.SetVTime(int64(t.floor))
	t.metrics.SetMessages(t.messages)
	if !t.paceEpoch.IsZero() {
		t.metrics.SetLag(int64(time.Since(t.paceEpoch)) - int64(t.floor))
	}
	return nil
}

// DrainPass implements parcore.Transport. Turns within a pass are
// independent (messages only move between passes), so the pass runs
// concurrently here too; the expectation counters carry messages from the
// previous pass only, exactly like the in-process transport.
func (t *coordTransport) DrainPass(tt vtime.Time) (bool, error) {
	bodies := make([][]byte, len(t.conns))
	for i := range t.conns {
		expect := t.expectFor(i)
		bodies[i] = wire.Drain{T: int64(tt), Expect: expect}.Encode()
		t.acked[i] = sumCounts(expect)
	}
	replies, err := t.round(wire.TDrain, wire.TDrainDone, bodies, false)
	if err != nil {
		return false, err
	}
	progressed := false
	for i, body := range replies {
		m, err := wire.DecodeDrainDone(body)
		if err != nil {
			return false, err
		}
		if vtime.Time(m.Counts.Now) > t.floor {
			t.floor = vtime.Time(m.Counts.Now)
		}
		if err := t.update(i, m.Counts.Sent); err != nil {
			return false, err
		}
		progressed = progressed || m.Progressed
	}
	// Drain turns run events, so any saved step bounds are stale; the next
	// Exchange re-derives them with a bounds-only step.
	t.saved = nil
	for j := range t.lastGrants {
		if tt > t.lastGrants[j] {
			t.lastGrants[j] = tt
		}
	}
	t.metrics.AddSerialRounds(1)
	t.metrics.SetVTime(int64(t.floor))
	t.metrics.SetMessages(t.messages)
	return progressed, nil
}
