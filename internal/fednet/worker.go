package fednet

// The worker side of a federation: one process, one parcore shard. The
// worker deterministically rebuilds its slice of the emulation from the
// distributed state and then serves the coordinator's barrier protocol.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"modelnet/internal/bind"
	"modelnet/internal/dynamics"
	"modelnet/internal/edge"
	"modelnet/internal/emucore"
	"modelnet/internal/fednet/wire"
	"modelnet/internal/netstack"
	"modelnet/internal/obs"
	"modelnet/internal/parcore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// WorkerOptions tune a worker process.
type WorkerOptions struct {
	// Timeout bounds every blocking step (control reads, data-plane
	// waits). Zero means DefaultTimeout.
	Timeout time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// DefaultTimeout is the per-step liveness bound of a federation.
const DefaultTimeout = 120 * time.Second

func (o *WorkerOptions) defaults() {
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
}

// Worker joins the coordinator at join and serves one shard until the run
// completes. It is the body of the `modelnet core` subcommand.
func Worker(join string, opts WorkerOptions) error {
	opts.defaults()
	conn, err := net.DialTimeout("tcp", join, opts.Timeout)
	if err != nil {
		return fmt.Errorf("fednet: join %s: %w", join, err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	w := &workerState{control: conn, opts: opts}
	if err := w.run(); err != nil {
		// Best-effort error report so the coordinator fails fast instead
		// of timing out.
		_ = wire.WriteFrame(conn, wire.TError, []byte(err.Error()))
		return err
	}
	return nil
}

type workerState struct {
	control net.Conn
	opts    WorkerOptions

	cfg     setup
	env     *WorkerEnv
	sched   *vtime.Scheduler
	emu     *emucore.Emulator
	sync    parcore.ShardSync
	applier *parcore.Applier

	outbox *parcore.Outbox
	col    *collector
	dp     *dataPlane
	gw     *edge.Gateway // live edge gateway; nil without a homed lease

	// table is the shard-local route table under sharded distribution; nil
	// on the monolithic path. setupBytes and startupWallNs price what the
	// distribution cost this worker (first-class BENCH columns).
	table         *bind.ShardTable
	setupBytes    uint64
	startupWallNs int64

	sent       []uint64 // cumulative messages sent per peer shard
	deliveries []float64
	report     func() json.RawMessage

	tracer       *obs.Tracer      // non-nil when the setup asked for a trace
	prof         obs.ShardProfile // wall-time and lookahead-utilization breakdown
	metrics      *obs.Metrics     // non-nil when the setup asked for live metrics
	metricsAddr  string
	closeMetrics func() error

	// Recovery state (Recoverable runs): eng is the dynamics engine whose
	// cursor the barrier checkpoints record; rec keeps the per-peer send
	// logs a respawned peer's recovery replays; resume marks this process
	// as a respawned replacement replaying a logged prefix. failAt arms the
	// fault-injection directive: die on receipt of the failAt-th TStep.
	eng       *dynamics.Engine
	rec       *workerRecovery
	resume    bool
	failAt    int
	stepsSeen int
}

// workerRecovery is the worker's send log: every batch element it ever put
// on the data plane, per peer, pre-encoded in channel-sequence order. A
// respawned peer rebuilds its collector from scratch, so recovery
// retransmits the whole log; the determinism contract keeps a replayed
// worker's log byte-identical to the original's. Guarded by mu: the control
// goroutine appends, reader goroutines snapshot for resends.
type workerRecovery struct {
	mu  sync.Mutex
	log [][][]byte // [peer][tseq-1] = encoded batch element
}

func (r *workerRecovery) append(j int, elems [][]byte) {
	r.mu.Lock()
	r.log[j] = append(r.log[j], elems...)
	r.mu.Unlock()
}

func (r *workerRecovery) snapshot(j int) [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]byte(nil), r.log[j]...)
}

// readControl reads one control frame under the liveness timeout,
// surfacing TError frames as errors.
func (w *workerState) readControl() (uint8, []byte, error) {
	if err := w.control.SetReadDeadline(time.Now().Add(w.opts.Timeout)); err != nil {
		return 0, nil, err
	}
	typ, body, err := wire.ReadFrame(w.control)
	if err != nil {
		return 0, nil, fmt.Errorf("fednet: control read: %w", err)
	}
	if typ == wire.TError {
		return 0, nil, fmt.Errorf("fednet: coordinator error: %s", body)
	}
	return typ, body, nil
}

func (w *workerState) send(typ uint8, body []byte) error {
	return wire.WriteFrame(w.control, typ, body)
}

// run is the worker lifecycle: hello, setup, barrier service, report.
func (w *workerState) run() error {
	// Bind both data planes before announcing: the coordinator picks one.
	// Listeners bind to the interface facing the coordinator, so remote
	// workers announce a routable address rather than localhost.
	localIP := w.control.LocalAddr().(*net.TCPAddr).IP
	tcpLn, err := net.Listen("tcp", net.JoinHostPort(localIP.String(), "0"))
	if err != nil {
		return err
	}
	defer tcpLn.Close()
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: localIP})
	if err != nil {
		return err
	}
	defer udp.Close()

	hb, _ := json.Marshal(hello{TCPAddr: tcpLn.Addr().String(), UDPAddr: udp.LocalAddr().String(), Pid: os.Getpid()})
	if err := w.send(wire.THello, hb); err != nil {
		return err
	}

	typ, body, err := w.readControl()
	if err != nil {
		return err
	}
	if typ == wire.TRecover {
		// This process is a respawned replacement: the setup that follows is
		// a replay, and the data plane must announce itself to the live
		// peers' meshes instead of forming a fresh one.
		if _, err := wire.DecodeRecover(body); err != nil {
			return fmt.Errorf("fednet: recover frame: %w", err)
		}
		w.resume = true
		if typ, body, err = w.readControl(); err != nil {
			return err
		}
	}
	start := time.Now()
	switch typ {
	case wire.TSetup:
		w.setupBytes = uint64(len(body))
		if err := w.setup(body, udp, tcpLn); err != nil {
			return err
		}
	case wire.TSetupChunk:
		// Sharded distribution: the setup arrives as chunked sections. Keep
		// reading chunks until all four sections are complete.
		asm := wire.NewChunkAssembler()
		for {
			w.setupBytes += uint64(len(body))
			ch, err := wire.DecodeSetupChunk(body)
			if err != nil {
				return fmt.Errorf("fednet: setup chunk: %w", err)
			}
			if err := asm.Add(ch); err != nil {
				return fmt.Errorf("fednet: setup chunk: %w", err)
			}
			if _, err := asm.Require(wire.SecConfig, wire.SecView, wire.SecWorld, wire.SecDynamics); err == nil {
				break
			}
			if typ, body, err = w.readControl(); err != nil {
				return err
			}
			if typ != wire.TSetupChunk {
				return fmt.Errorf("fednet: expected setup chunk, got frame type %d", typ)
			}
		}
		if err := w.setupSharded(asm, udp, tcpLn); err != nil {
			return err
		}
	default:
		return fmt.Errorf("fednet: expected setup, got frame type %d", typ)
	}
	w.startupWallNs = int64(time.Since(start))
	if !(w.cfg.Recoverable && w.cfg.DataPlane == DataTCP) {
		// Mesh is up; no further data-plane joins. Recoverable TCP runs keep
		// the listener open for respawned peers (the data plane owns and
		// closes it at teardown).
		tcpLn.Close()
	}
	w.opts.Log("fednet worker: shard %d/%d up (%s data plane, %d VNs homed)",
		w.cfg.Shard, w.cfg.Cores, w.cfg.DataPlane, w.homedVNs())
	defer w.dp.close()
	var ack setupAck
	if w.gw != nil {
		ack.GatewayAddr = w.gw.Addr()
		defer w.gw.Close()
		w.opts.Log("fednet worker: shard %d live gateway on %s", w.cfg.Shard, ack.GatewayAddr)
	}
	if w.metrics != nil {
		ack.MetricsAddr = w.metricsAddr
		defer w.closeMetrics() //nolint:errcheck
	}
	ackBody, err := json.Marshal(ack)
	if err != nil {
		return err
	}
	if err := w.send(wire.TSetupAck, ackBody); err != nil {
		return err
	}
	return w.serve()
}

func (w *workerState) homedVNs() int {
	n := 0
	for vn := 0; vn < w.env.NumVNs(); vn++ {
		if w.env.homes[vn] == w.cfg.Shard {
			n++
		}
	}
	return n
}

// decodeConfig unmarshals and sanity-checks the setup's JSON config section.
func (w *workerState) decodeConfig(cfgJSON []byte) error {
	if err := json.Unmarshal(cfgJSON, &w.cfg); err != nil {
		return fmt.Errorf("fednet: setup config: %w", err)
	}
	cfg := &w.cfg
	if cfg.Shard < 0 || cfg.Cores < 2 || cfg.Shard >= cfg.Cores || len(cfg.DataAddrs) != cfg.Cores {
		return fmt.Errorf("fednet: inconsistent setup: shard %d of %d, %d data addrs", cfg.Shard, cfg.Cores, len(cfg.DataAddrs))
	}
	return nil
}

// setup rebuilds the shard from the coordinator's monolithic distributed
// state: the whole topology and assignment, routes recomputed locally. This
// is the live-edge path; sharded runs arrive as setupSharded's chunks.
func (w *workerState) setup(body []byte, udp *net.UDPConn, tcpLn net.Listener) error {
	d := wire.NewDec(body)
	cfgJSON := d.Blob()
	topoBin := d.Blob()
	asnBin := d.Blob()
	dynBin := d.Blob()
	if err := d.Done(); err != nil {
		return fmt.Errorf("fednet: setup frame: %w", err)
	}
	if err := w.decodeConfig(cfgJSON); err != nil {
		return err
	}
	cfg := &w.cfg
	g, err := wire.DecodeTopology(topoBin)
	if err != nil {
		return fmt.Errorf("fednet: setup topology: %w", err)
	}
	owner, cores, err := wire.DecodeAssignment(asnBin)
	if err != nil {
		return fmt.Errorf("fednet: setup assignment: %w", err)
	}
	var dyn *dynamics.Spec
	if len(dynBin) > 0 {
		if dyn, err = dynamics.Decode(dynBin); err != nil {
			return fmt.Errorf("fednet: setup dynamics: %w", err)
		}
	}
	if cores != cfg.Cores || len(owner) != g.NumLinks() {
		return fmt.Errorf("fednet: assignment covers %d pipes on %d cores, topology has %d links and setup %d cores",
			len(owner), cores, g.NumLinks(), cfg.Cores)
	}

	// Rebuild the Bind phase exactly as the coordinator's modelnet.Run
	// would: same inputs, deterministic outputs.
	pod := bind.NewPOD(owner, cores)
	b, err := bind.Bind(g, bind.Options{
		EdgeNodes:    cfg.EdgeNodes,
		Cores:        cores,
		RouteCache:   cfg.RouteCache,
		Hierarchical: cfg.Hierarchical,
	})
	if err != nil {
		return fmt.Errorf("fednet: bind: %w", err)
	}
	homes := parcore.Homes(g, b, pod, cores)
	return w.build(g, b, pod, homes, dyn, udp, tcpLn)
}

// setupSharded rebuilds the shard from its chunked per-shard view: a
// skeleton graph over the global ID spaces with only the view's links real,
// a hand-assembled binding from the shipped VN world map (bind.Bind's client
// scan would misread a skeleton), and a demand-paged ShardTable in place of
// the O(n²) route matrix.
func (w *workerState) setupSharded(asm *wire.ChunkAssembler, udp *net.UDPConn, tcpLn net.Listener) error {
	secs, err := asm.Require(wire.SecConfig, wire.SecView, wire.SecWorld, wire.SecDynamics)
	if err != nil {
		return fmt.Errorf("fednet: sharded setup: %w", err)
	}
	if err := w.decodeConfig(secs[wire.SecConfig]); err != nil {
		return err
	}
	cfg := &w.cfg
	if !cfg.Sharded {
		return fmt.Errorf("fednet: chunked setup without the sharded flag")
	}
	view, err := wire.DecodeShardView(secs[wire.SecView])
	if err != nil {
		return fmt.Errorf("fednet: setup view: %w", err)
	}
	if view.Shard != cfg.Shard || view.Cores != cfg.Cores {
		return fmt.Errorf("fednet: view is for shard %d of %d, setup says %d of %d", view.Shard, view.Cores, cfg.Shard, cfg.Cores)
	}
	world, err := wire.DecodeWorld(secs[wire.SecWorld])
	if err != nil {
		return fmt.Errorf("fednet: setup world: %w", err)
	}
	var dyn *dynamics.Spec
	if dynBin := secs[wire.SecDynamics]; len(dynBin) > 0 {
		if dyn, err = dynamics.Decode(dynBin); err != nil {
			return fmt.Errorf("fednet: setup dynamics: %w", err)
		}
	}
	g, err := view.Skeleton()
	if err != nil {
		return fmt.Errorf("fednet: setup skeleton: %w", err)
	}
	// Dense owner vector over the global pipe ID space; -1 marks pipes
	// outside the view, which the sparse emulator never materializes.
	ownerDense := make([]int, view.NumLinks)
	for i := range ownerDense {
		ownerDense[i] = -1
	}
	for i, l := range view.Links {
		ownerDense[l.ID] = int(view.LinkOwner[i])
	}
	pod := bind.NewPOD(ownerDense, cfg.Cores)

	numVNs := len(world.VNHome)
	b := &bind.Binding{
		VNHome:   make([]topology.NodeID, numVNs),
		VNOfNode: make([]pipes.VN, view.NumNodes),
		EdgeOf:   make([]int, numVNs),
	}
	for i := range b.VNOfNode {
		b.VNOfNode[i] = -1
	}
	homes := make([]int, numVNs)
	for v := range world.VNHome {
		n := world.VNHome[v]
		if int(n) >= view.NumNodes {
			return fmt.Errorf("fednet: world maps VN %d to node %d, view has %d nodes", v, n, view.NumNodes)
		}
		if h := world.Homes[v]; int(h) >= cfg.Cores {
			return fmt.Errorf("fednet: world homes VN %d on shard %d of %d", v, h, cfg.Cores)
		}
		b.VNHome[v] = topology.NodeID(n)
		b.VNOfNode[n] = pipes.VN(v)
		homes[v] = int(world.Homes[v])
	}
	// Edge/core multiplexing mirrors bind.Bind on the same inputs.
	edges := cfg.EdgeNodes
	if edges <= 0 {
		edges = numVNs
	}
	for v := range b.EdgeOf {
		b.EdgeOf[v] = v % edges
	}
	b.CoreOf = make([]int, edges)
	for e := range b.CoreOf {
		b.CoreOf[e] = e % cfg.Cores
	}

	table, err := bind.NewShardTable(g, view, b.VNHome, w.routeSeed, 0)
	if err != nil {
		return fmt.Errorf("fednet: shard table: %w", err)
	}
	// Preload the full reroute epoch schedule over the coordinator's exact
	// horizon: a faster peer can tunnel a packet pinned to an epoch this
	// shard's own dynamics replay has not reached yet, and Extend must be
	// able to serve it.
	downSets, err := dynamics.EnumerateReroutes(dyn, view.NumLinks, rerouteHorizon(vtime.Duration(cfg.RunForNs)))
	if err != nil {
		return fmt.Errorf("fednet: %w", err)
	}
	table.SetEpochs(downSets)
	b.Table = table
	w.table = table
	return w.build(g, b, pod, homes, dyn, udp, tcpLn)
}

// routeSeed is the worker's bind.SeedFunc: one TRouteReq/TRouteResp round
// trip on the control conn. The coordinator serves the request inline from
// whichever read it is blocked in, and a worker only pages routes while the
// coordinator awaits its next protocol reply, so the RPC cannot deadlock.
func (w *workerState) routeSeed(epoch int32, target topology.NodeID) ([]bind.Dist, error) {
	if err := w.send(wire.TRouteReq, wire.RouteReq{Epoch: epoch, Target: int32(target)}.Encode()); err != nil {
		return nil, err
	}
	typ, body, err := w.readControl()
	if err != nil {
		return nil, err
	}
	if typ != wire.TRouteResp {
		return nil, fmt.Errorf("fednet: expected route resp, got frame type %d", typ)
	}
	m, err := wire.DecodeRouteResp(body)
	if err != nil {
		return nil, err
	}
	if m.Epoch != epoch || topology.NodeID(m.Target) != target {
		return nil, fmt.Errorf("fednet: route resp for epoch %d node %d, asked for %d/%d", m.Epoch, m.Target, epoch, target)
	}
	return m.Dists, nil
}

// build finishes shard construction from either setup path: sync plan,
// scheduler, emulator (sparse under a shard table), dynamics, data plane,
// scenario install, gateway.
func (w *workerState) build(g *topology.Graph, b *bind.Binding, pod *bind.POD, homes []int, dyn *dynamics.Spec, udp *net.UDPConn, tcpLn net.Listener) error {
	cfg := &w.cfg
	cores := cfg.Cores
	mode, err := parcore.ParseSyncMode(cfg.Sync)
	if err != nil {
		return err
	}
	if mode == parcore.SyncAdaptive {
		w.sync = parcore.ComputeSyncPlan(g, b, pod, homes, cores, dyn.LatencyFloorFunc())[cfg.Shard]
	} else {
		w.sync = parcore.ComputeSyncFloor(g, b, pod, homes, cores, dyn.LatencyFloorFunc())[cfg.Shard]
	}
	w.sched = vtime.NewScheduler()
	w.outbox = parcore.NewOutbox(cfg.Shard, cores, w.sched)
	if w.table != nil {
		w.emu, err = emucore.NewShardSparse(w.sched, g, b, pod, cfg.Profile, cfg.Seed, cfg.Shard, homes, w.outbox.Handoff)
	} else {
		w.emu, err = emucore.NewShard(w.sched, g, b, pod, cfg.Profile, cfg.Seed, cfg.Shard, homes, w.outbox.Handoff)
	}
	if err != nil {
		return fmt.Errorf("fednet: shard emulator: %w", err)
	}
	w.applier = parcore.NewApplier(w.sched, w.emu)
	w.prof.Shard = cfg.Shard
	if cfg.Trace {
		w.tracer = obs.NewTracer(cfg.Shard)
		w.emu.Trace = w.tracer
	}
	if cfg.Metrics {
		w.metrics = obs.NewMetrics("worker", cfg.Shard)
		addr, closeFn, err := w.metrics.Serve("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("fednet: shard %d metrics: %w", cfg.Shard, err)
		}
		w.metricsAddr, w.closeMetrics = addr, closeFn
	}
	// Attach dynamics before the scenario installs its workload, so the
	// step events precede same-time workload events in the scheduler's
	// tie-break — identically to the sequential and in-process modes.
	eng, err := dynamics.Attach(w.sched, w.emu, dyn)
	if err != nil {
		return fmt.Errorf("fednet: dynamics: %w", err)
	}
	w.eng = eng
	if eng != nil && w.table != nil {
		// Sharded workers have no global matrix to rebuild; a reroute just
		// advances the table to the next preloaded epoch.
		eng.OnReroute = func([]topology.LinkID) { w.table.Advance() }
	}
	if cfg.CollectDeliveries {
		w.emu.OnDeliver = func(_ *pipes.Packet, at vtime.Time) {
			w.deliveries = append(w.deliveries, at.Seconds())
		}
	}

	w.col = newCollector(cores)
	w.dp, err = openDataPlane(cfg.DataPlane, cfg.Shard, cfg.DataAddrs, udp, tcpLn, w.col, w.opts.Timeout, cfg.MaxDatagram, cfg.Recoverable, w.resume)
	if err != nil {
		return err
	}
	w.sent = make([]uint64, cores)
	if cfg.Recoverable {
		w.rec = &workerRecovery{log: make([][][]byte, cores)}
		w.dp.onRecover = w.handleRecoverReq
	}
	// Readers start only now, with the recovery hook wired: an inbound frame
	// must never race the wiring above.
	w.dp.start()
	if w.resume {
		// Everything the fleet already exchanged this run must be
		// re-delivered here: mark every inbound channel lenient (the resent
		// logs overlap whatever stale datagrams are still in flight) and ask
		// each live peer for its full send log. On the UDP plane the request
		// frames' source address doubles as this worker's new endpoint.
		for j := 0; j < cores; j++ {
			if j != cfg.Shard {
				w.col.reset(j)
			}
		}
		if err := w.dp.recoverBroadcast(); err != nil {
			return err
		}
	}

	w.env = &WorkerEnv{
		Shard: cfg.Shard, Cores: cores,
		Graph: g, Binding: b,
		Sched: w.sched, Emu: w.emu,
		homes: homes,
		hosts: map[pipes.VN]*netstack.Host{},
	}
	scen, err := lookupScenario(cfg.Scenario)
	if err != nil {
		return err
	}
	w.report, err = scen.Install(w.env, cfg.Params)
	if err != nil {
		return fmt.Errorf("fednet: scenario %q install: %w", cfg.Scenario, err)
	}
	// The gateway lease: bind a real socket only if this shard homes at
	// least one mapped ingress VN (the gateway opens after the scenario so
	// the scenario's own ports are already claimed).
	if cfg.Edge != nil && cfg.Edge.HomedMaps(w.env.Homed) > 0 {
		w.gw, err = edge.NewGateway(*cfg.Edge, w.env.Homed, w.env.NewHost, w.sched)
		if err != nil {
			return fmt.Errorf("fednet: shard %d gateway: %w", cfg.Shard, err)
		}
	}
	return nil
}

// dataSender adapts the data plane to parcore.Sender: one batch frame
// sequence per (flush, peer), messages stamped with dense channel
// sequences, cumulative counters updated per message so the barrier
// accounting is byte-for-byte identical to the unbatched plane.
type dataSender struct{ w *workerState }

// Send implements parcore.Sender.
func (s dataSender) Send(j int, msgs []parcore.Msg) error {
	w := s.w
	tseq0 := w.sent[j] + 1
	if w.rec != nil {
		// Recoverable runs always batch and keep the encoded elements: the
		// send log is what a peer's respawn replays. Append before sending —
		// a concurrent recovery resend then either includes the element or
		// the element's own send goes to the already-updated endpoint, so
		// the respawned peer misses nothing (duplicates are dropped by its
		// lenient collector).
		elems := make([][]byte, len(msgs))
		for i, m := range msgs {
			d, err := wireMsg(m)
			if err != nil {
				return err
			}
			elems[i] = d.Encode()
		}
		w.rec.append(j, elems)
		if err := w.dp.sendElems(j, elems, tseq0, tseq0+uint64(len(elems))-1); err != nil {
			return err
		}
	} else if w.cfg.NoBatch {
		for i, m := range msgs {
			if err := w.dp.send(j, m, tseq0+uint64(i)); err != nil {
				return err
			}
		}
	} else if err := w.dp.sendBatch(j, msgs, tseq0); err != nil {
		return err
	}
	w.sent[j] += uint64(len(msgs))
	// The descriptors are on the wire; recycle them into the shard's pool.
	for _, m := range msgs {
		w.emu.ReleasePacket(m.Pkt)
	}
	return nil
}

// flushOutbox sends every pending cross-shard message batch to its peer.
func (w *workerState) flushOutbox() error {
	return w.outbox.Flush(dataSender{w})
}

// extendRoutes grows each tunneled packet's route segment through this
// shard's region under the packet's pinned reroute epoch (bind.ShardTable
// route segments end at the first foreign pipe). Must run before the applier
// so synchronization pricing sees the extended route. No-op on the
// monolithic path, whose routes are complete at injection.
func (w *workerState) extendRoutes(msgs []parcore.Msg) error {
	if w.table == nil {
		return nil
	}
	for _, m := range msgs {
		if m.Pid < 0 || m.Pkt == nil {
			continue // delivery completion, not a tunneled enqueue
		}
		r, err := w.table.Extend(bind.Route(m.Pkt.Route), m.Pkt.Epoch, m.Pkt.Dst)
		if err != nil {
			return fmt.Errorf("fednet: shard %d: %w", w.cfg.Shard, err)
		}
		m.Pkt.Route = r
	}
	return nil
}

func (w *workerState) counts() wire.Counts {
	return wire.Counts{Now: int64(w.sched.Now()), Sent: append([]uint64(nil), w.sent...)}
}

// serve is the barrier service loop, the worker half of the socket
// Transport the coordinator drives.
func (w *workerState) serve() error {
	for {
		typ, body, err := w.readControl()
		if err != nil {
			return err
		}
		switch typ {
		case wire.TFlush:
			t0 := time.Now()
			// Barrier edge: admit any live real-world arrivals before the
			// flush, stamped no earlier than the coordinator's clock floor.
			// The injections become ordinary scheduler events, so the
			// bounds reported at the sync step already account for them.
			if w.gw != nil {
				m, err := wire.DecodeFlush(body)
				if err != nil {
					return err
				}
				w.gw.Admit(vtime.Time(m.Floor))
			}
			if err := w.flushOutbox(); err != nil {
				return err
			}
			w.prof.FlushWallNs += uint64(time.Since(t0))
			w.updateMetrics()
			if err := w.send(wire.TFlushDone, w.counts().Encode()); err != nil {
				return err
			}
		case wire.TSync:
			m, err := wire.DecodeSync(body)
			if err != nil {
				return err
			}
			t0 := time.Now()
			msgs, err := w.col.wait(m.Expect, w.opts.Timeout)
			if err != nil {
				return err
			}
			t1 := time.Now()
			w.prof.WaitWallNs += uint64(t1.Sub(t0))
			if err := w.extendRoutes(msgs); err != nil {
				return err
			}
			if err := w.applier.Apply(msgs); err != nil {
				return err
			}
			w.prof.ApplyWallNs += uint64(time.Since(t1))
			b := parcore.ShardBounds(w.sched, w.emu, w.sync, w.applier)
			rdy := wire.Ready{Next: int64(b.Next), Safe: int64(b.Safe), SafeTo: timesToI64(b.SafeTo)}
			if err := w.send(wire.TReady, rdy.Encode()); err != nil {
				return err
			}
		case wire.TWindow:
			m, err := wire.DecodeWindow(body)
			if err != nil {
				return err
			}
			t0 := time.Now()
			f0 := w.sched.Fired()
			w.sched.RunUntil(vtime.Time(m.Bound))
			w.prof.RunWallNs += uint64(time.Since(t0))
			w.prof.Windows++
			if fired := w.sched.Fired() - f0; fired > 0 {
				w.prof.ActiveWindows++
				w.prof.EventsFired += fired
			}
			if err := w.flushOutbox(); err != nil {
				return err
			}
			w.metrics.AddWindows(1)
			w.updateMetrics()
			if err := w.send(wire.TWindowDone, w.counts().Encode()); err != nil {
				return err
			}
		case wire.TStep:
			w.stepsSeen++
			if w.failAt > 0 && w.stepsSeen == w.failAt {
				// Injected fault: die the way a crashed process would — no
				// error frame, no teardown, a distinctive exit status.
				os.Exit(FaultExitCode)
			}
			if err := w.step(body); err != nil {
				return err
			}
		case wire.TFail:
			// Arm the fault injection; no reply — the directive rides
			// between protocol rounds.
			m, err := wire.DecodeFail(body)
			if err != nil {
				return err
			}
			w.failAt = int(m.Round)
		case wire.TDrain:
			m, err := wire.DecodeDrain(body)
			if err != nil {
				return err
			}
			t0 := time.Now()
			msgs, err := w.col.wait(m.Expect, w.opts.Timeout)
			if err != nil {
				return err
			}
			if err := w.extendRoutes(msgs); err != nil {
				return err
			}
			if err := w.applier.Apply(msgs); err != nil {
				return err
			}
			progressed := false
			f0 := w.sched.Fired()
			if w.sched.NextEventTime() <= vtime.Time(m.T) {
				w.sched.RunUntil(vtime.Time(m.T))
				progressed = true
			}
			w.prof.DrainWallNs += uint64(time.Since(t0))
			w.prof.EventsFired += w.sched.Fired() - f0
			if err := w.flushOutbox(); err != nil {
				return err
			}
			w.metrics.AddSerialRounds(1)
			w.updateMetrics()
			dd := wire.DrainDone{Progressed: progressed, Counts: w.counts()}
			if err := w.send(wire.TDrainDone, dd.Encode()); err != nil {
				return err
			}
		case wire.TFinish:
			return w.finish()
		default:
			return fmt.Errorf("fednet: unexpected control frame type %d", typ)
		}
	}
}

// step serves one fused TStep round: await the expectation prefixes, apply
// the inbox, run the shard through the grant (skipped on a bounds-only
// step), flush the outbox — apply can emit eager handoffs even without a
// run, and an unflushed handoff would be invisible to both the bounds below
// and the coordinator's in-flight accounting — then report counts and
// post-step bounds in one TStepDone.
func (w *workerState) step(body []byte) error {
	m, err := wire.DecodeStep(body)
	if err != nil {
		return err
	}
	if w.gw != nil {
		w.gw.Admit(vtime.Time(m.Floor))
	}
	t0 := time.Now()
	msgs, err := w.col.wait(m.Expect, w.opts.Timeout)
	if err != nil {
		return err
	}
	t1 := time.Now()
	w.prof.WaitWallNs += uint64(t1.Sub(t0))
	if err := w.extendRoutes(msgs); err != nil {
		return err
	}
	if err := w.applier.Apply(msgs); err != nil {
		return err
	}
	t2 := time.Now()
	w.prof.ApplyWallNs += uint64(t2.Sub(t1))
	if m.Grant >= 0 {
		f0 := w.sched.Fired()
		w.sched.RunUntil(vtime.Time(m.Grant))
		w.prof.RunWallNs += uint64(time.Since(t2))
		w.prof.Windows++
		if fired := w.sched.Fired() - f0; fired > 0 {
			w.prof.ActiveWindows++
			w.prof.EventsFired += fired
		}
		w.metrics.AddWindows(1)
	}
	f1 := time.Now()
	if err := w.flushOutbox(); err != nil {
		return err
	}
	w.prof.FlushWallNs += uint64(time.Since(f1))
	w.updateMetrics()
	b := parcore.ShardBounds(w.sched, w.emu, w.sync, w.applier)
	sd := wire.StepDone{
		Counts: w.counts(),
		Next:   int64(b.Next),
		Safe:   int64(b.Safe),
		SafeTo: timesToI64(b.SafeTo),
	}
	if err := w.send(wire.TStepDone, sd.Encode()); err != nil {
		return err
	}
	if m.Ckpt {
		// Checkpoint barrier: push the canonical state digest right after
		// the step reply. The coordinator stores the blob and byte-compares
		// it against a recovering replay's.
		ck, err := w.buildCheckpoint()
		if err != nil {
			return err
		}
		return w.send(wire.TCheckpoint, ck.Encode())
	}
	return nil
}

// timesToI64 converts a SafeTo vector to its wire form (nil stays nil).
func timesToI64(ts []vtime.Time) []int64 {
	if ts == nil {
		return nil
	}
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = int64(t)
	}
	return out
}

// updateMetrics refreshes the live endpoint from worker state. Called only
// at barrier boundaries on the serve goroutine: the data-plane counters are
// plain fields owned by that goroutine, so this is the one safe place to
// snapshot them into the endpoint's atomics.
func (w *workerState) updateMetrics() {
	if w.metrics == nil {
		return
	}
	w.metrics.SetVTime(int64(w.sched.Now()))
	w.metrics.SetPlane(w.dp.counters())
	if w.gw != nil {
		st := w.gw.Stats()
		w.metrics.SetGateway(st.IngressPkts, st.IngressBytes, st.EgressPkts, st.EgressBytes,
			st.Oversize+st.Unmapped+st.QueueDrops)
	}
}

// finish builds and sends the worker's final report, preceded by any
// recorded trace events streamed as TTrace chunks.
func (w *workerState) finish() error {
	frames, bytes := w.dp.counters()
	rep := WorkerReport{
		Shard:             w.cfg.Shard,
		Totals:            w.emu.Totals(),
		Accuracy:          w.emu.Accuracy,
		NowNs:             int64(w.sched.Now()),
		Frames:            frames,
		BytesOnWire:       bytes,
		SetupBytes:        w.setupBytes,
		StartupWallNs:     w.startupWallNs,
		PeakRSSBytes:      peakRSSBytes(),
		MaterializedPipes: w.emu.MaterializedPipes(),
		Deliveries:        w.deliveries,
		PipeDrops:         make([]uint64, w.emu.NumPipes()),
		Profile:           w.prof,
	}
	if w.table != nil {
		rep.RouteRPCs = w.table.SeedRPCs
	}
	for i := range rep.PipeDrops {
		// Unmaterialized slots (sparse shard views) have no pipe to ask.
		if p := w.emu.Pipe(pipes.ID(i)); p != nil {
			rep.PipeDrops[i] = p.TotalDrops()
		}
	}
	rep.DropsByReason = w.emu.DropsByReason()
	cs := w.emu.CoreStats(w.cfg.Shard)
	rep.TunnelsIn, rep.TunnelsOut = cs.TunnelsIn, cs.TunnelsOut
	if w.gw != nil {
		st := w.gw.Stats()
		rep.Edge = &st
		// Fold the gateway's rejections into the unified drop taxonomy.
		rep.DropsByReason[pipes.DropOversize] += st.Oversize
		rep.DropsByReason[pipes.DropGatewayReject] += st.Unmapped + st.QueueDrops
	}
	if w.report != nil {
		rep.Scenario = w.report()
	}
	if w.tracer != nil {
		evs := w.tracer.Events()
		for len(evs) > 0 {
			n := len(evs)
			if n > traceChunkEvents {
				n = traceChunkEvents
			}
			if err := w.send(wire.TTrace, encodeTraceChunk(evs[:n])); err != nil {
				return err
			}
			evs = evs[n:]
		}
	}
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	return w.send(wire.TReport, body)
}

// peakRSSBytes reads the process's high-water resident set (VmHWM) from
// procfs; 0 where unavailable.
func peakRSSBytes() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// MaybeRunWorker turns the current process into a federation worker when
// the spawn environment variable is set, and never returns in that case.
// Binaries that can host a worker (cmd/modelnet, cmd/mnbench, test
// binaries via TestMain) call it before doing anything else; SpawnWorkers
// relies on it to re-exec the running binary as its worker fleet.
func MaybeRunWorker() {
	join := os.Getenv(EnvJoin)
	if join == "" {
		return
	}
	err := Worker(join, WorkerOptions{
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fednet worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
