// Package emucore implements the ModelNet core (§2.2–§3.3): one or more
// emulated core routers that move packet descriptors through the pipe
// network of a distilled topology under a tick-quantized scheduler, with
// explicit CPU and NIC capacity models so that overload produces physical
// drops at the (modeled) network interface rather than emulation error —
// exactly the paper's design point ("core CPU saturation results in dropped
// packets rather than inaccurate emulation").
//
// The paper's core is a FreeBSD kernel module driven by a 10 kHz hardware
// timer. Here the whole system runs in virtual time, so the tick is a model
// parameter: per-hop delivery error is bounded by one tick by construction,
// deterministically, rather than as a best-effort property of kernel
// priorities.
package emucore

import "modelnet/internal/vtime"

// CPUCosts model the per-packet processing cost on a core. The paper
// measures a fixed per-packet overhead (IP stack + interrupt handling) plus
// a per-emulated-hop cost (§3.2). Tunnel costs apply when a packet crosses
// between cores in a multi-core emulation (§3.3).
type CPUCosts struct {
	PerPacket vtime.Duration // NIC rx + IP stack + route lookup, per packet entering a core
	PerHop    vtime.Duration // heap + queue work per emulated hop
	TunnelTx  vtime.Duration // encapsulating and sending a descriptor to a peer core
	TunnelRx  vtime.Duration // receiving and dispatching a tunneled descriptor
}

// Profile is the hardware/behaviour model of the core cluster.
type Profile struct {
	// Tick is the scheduler quantum (hardware timer granularity). The
	// paper's prototype runs at 10 kHz = 100 µs. Zero means event-exact
	// scheduling (no quantization).
	Tick vtime.Duration

	// CPU holds per-packet costs; the zero value means an infinitely fast
	// CPU. CPUBacklog bounds how far emulation work may run ahead of the
	// clock before ingress packets are physically dropped — it models the
	// NIC receive ring that overflows while the (higher-priority)
	// emulation starves interrupt handling.
	CPU        CPUCosts
	CPUBacklog vtime.Duration

	// NICBps is each core's link rate in bits/s per direction (full
	// duplex); 0 = infinite. NICBacklog bounds NIC queueing before
	// physical drops.
	NICBps     float64
	NICBacklog vtime.Duration

	// DescriptorBytes is the on-wire size of a tunneled descriptor when
	// PayloadCaching is enabled (§2.2: "leaving the packet contents
	// buffered on the entry core node"). When PayloadCaching is false the
	// full packet is tunneled.
	PayloadCaching  bool
	DescriptorBytes int

	// DebtHandling enables the paper's (in-progress, §3.1) packet-debt
	// optimization: the scheduler tracks accumulated quantization error
	// and corrects it at subsequent hops, bounding end-to-end error by
	// one tick instead of one tick per hop.
	DebtHandling bool
}

// DefaultTick is the paper's 10 kHz scheduler granularity.
const DefaultTick = 100 * vtime.Microsecond

// DefaultProfile models the paper's testbed: 1.4 GHz PIII core with a
// gigabit NIC. The CPU constants are calibrated (see DESIGN.md) so that the
// Fig. 4 crossovers reproduce: 1–4 hop flows saturate the NIC at
// ~120 Kpkt/s, 8-hop flows saturate the CPU at ~90 Kpkt/s.
func DefaultProfile() Profile {
	return Profile{
		Tick: DefaultTick,
		CPU: CPUCosts{
			PerPacket: 4000 * vtime.Nanosecond,  // 4.0 µs
			PerHop:    900 * vtime.Nanosecond,   // 0.9 µs
			TunnelTx:  8000 * vtime.Nanosecond,  // calibrated to Table 1:
			TunnelRx:  12000 * vtime.Nanosecond, // ~3× degradation at 100% crossing
		},
		// Interrupt work the CPU can defer before the RX ring overruns:
		// a few ticks' worth. Larger values create drop epochs that
		// synchronize TCP timeouts (an artifact, not a behaviour).
		CPUBacklog: 500 * vtime.Microsecond,
		NICBps:     1e9,
		NICBacklog: 6 * vtime.Millisecond, // ≈750 1KB slots: a 2002 GbE ring

		DescriptorBytes: 96,
	}
}

// IdealProfile is the event-exact, infinitely-provisioned reference: the
// same engine behaves as a conventional packet-level simulator (the role
// ns-2 plays in the paper's Fig. 5 cross-validation).
func IdealProfile() Profile {
	return Profile{Tick: 0}
}

func (p Profile) ideal() bool { return p.Tick == 0 && p.CPU == CPUCosts{} && p.NICBps == 0 }

func (p Profile) cpuBacklog() vtime.Duration {
	if p.CPUBacklog <= 0 {
		return 2 * vtime.Millisecond
	}
	return p.CPUBacklog
}

func (p Profile) nicBacklog() vtime.Duration {
	if p.NICBacklog <= 0 {
		return 2 * vtime.Millisecond
	}
	return p.NICBacklog
}
