package emucore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// System-level emulator properties over random topologies and traffic.

// Property: conservation — injected = delivered + virtual drops + tx-side
// physical drops once quiescent, for random topologies, core counts, and
// traffic mixes.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, coresRaw, lossRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := int(coresRaw)%3 + 1
		g := topology.Ring(rng.Intn(4)+3, rng.Intn(3)+1,
			topology.LinkAttrs{BandwidthBps: 5e6, LatencySec: 0.004, QueuePkts: rng.Intn(10) + 3, LossRate: float64(lossRaw%5) / 50},
			topology.LinkAttrs{BandwidthBps: 1e6, LatencySec: 0.001, QueuePkts: 5})
		b, err := bind.Bind(g, bind.Options{Cores: cores})
		if err != nil {
			return false
		}
		var pod *bind.POD
		if cores > 1 {
			a, err := assign.KClusters(g, cores, seed)
			if err != nil {
				return false
			}
			pod = a.POD()
		}
		sched := vtime.NewScheduler()
		e, err := New(sched, g, b, pod, DefaultProfile(), seed)
		if err != nil {
			return false
		}
		n := b.NumVNs()
		for i := 0; i < 300; i++ {
			at := vtime.Time(rng.Intn(int(200 * vtime.Millisecond)))
			src := pipes.VN(rng.Intn(n))
			dst := pipes.VN(rng.Intn(n))
			size := rng.Intn(1400) + 64
			sched.At(at, func() { e.Inject(src, dst, size, nil) })
		}
		sched.Run()
		tot := e.Totals()
		if tot.InFlight != 0 {
			return false
		}
		var txDrops uint64
		for i := 0; i < e.Cores(); i++ {
			txDrops += e.CoreStats(i).PhysDropsTx
		}
		return tot.Injected == tot.Delivered+tot.VirtualDrops+txDrops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: multi-core runs are deterministic — identical seeds produce
// identical delivery counts and accuracy.
func TestMultiCoreDeterminismProperty(t *testing.T) {
	run := func(seed int64) (uint64, vtime.Duration) {
		g := topology.Ring(5, 2,
			topology.LinkAttrs{BandwidthBps: 5e6, LatencySec: 0.004, QueuePkts: 8},
			topology.LinkAttrs{BandwidthBps: 1e6, LatencySec: 0.001, QueuePkts: 5})
		b, _ := bind.Bind(g, bind.Options{Cores: 3})
		a, _ := assign.KClusters(g, 3, seed)
		sched := vtime.NewScheduler()
		e, _ := New(sched, g, b, a.POD(), DefaultProfile(), seed)
		rng := rand.New(rand.NewSource(seed))
		n := b.NumVNs()
		for i := 0; i < 500; i++ {
			at := vtime.Time(rng.Intn(int(500 * vtime.Millisecond)))
			src := pipes.VN(rng.Intn(n))
			dst := pipes.VN(rng.Intn(n))
			sched.At(at, func() { e.Inject(src, dst, 500, nil) })
		}
		sched.Run()
		return e.Delivered, e.Accuracy.MaxLag
	}
	f := func(seed int64) bool {
		d1, l1 := run(seed)
		d2, l2 := run(seed)
		return d1 == d2 && l1 == l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: the accuracy bound holds under arbitrary load for random hop
// counts — lag never exceeds (hops+1)·tick without debt handling.
func TestAccuracyBoundProperty(t *testing.T) {
	f := func(seed int64, hopsRaw uint8) bool {
		hops := int(hopsRaw)%6 + 1
		g := topology.Line(hops, topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.002, QueuePkts: 10})
		b, err := bind.Bind(g, bind.Options{})
		if err != nil {
			return false
		}
		sched := vtime.NewScheduler()
		prof := DefaultProfile()
		e, err := New(sched, g, b, nil, prof, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 400; i++ {
			at := vtime.Time(rng.Intn(int(100 * vtime.Millisecond)))
			sched.At(at, func() { e.Inject(0, 1, rng.Intn(1400)+64, nil) })
		}
		sched.Run()
		bound := vtime.Duration(hops+2) * prof.Tick
		return e.Accuracy.WithinBound(bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
