package emucore

import (
	"fmt"

	"modelnet/internal/vtime"
)

// Accuracy is the in-kernel logging package of §3.1, reduced to its
// purpose: tracking expected versus actual per-packet delay. Lag is the
// scheduler-quantization error accumulated over a packet's hops; the paper
// reports each packet-hop accurate to within the 100 µs timer granularity
// and ≤ 1 ms over a 10-hop path.
type Accuracy struct {
	Count  uint64
	SumLag vtime.Duration
	MaxLag vtime.Duration
	// Buckets histogram lag in decades of 100 µs: [0,100µs), [100µs,200µs),
	// ... [900µs,1ms), [1ms,∞).
	Buckets [11]uint64
	// MaxHops tracks the longest route observed, for error-bound checks.
	MaxHops int
}

// Record accounts one delivered packet's lag.
func (a *Accuracy) Record(lag vtime.Duration, hops int) {
	if lag < 0 {
		lag = 0
	}
	a.Count++
	a.SumLag += lag
	if lag > a.MaxLag {
		a.MaxLag = lag
	}
	if hops > a.MaxHops {
		a.MaxHops = hops
	}
	b := int(lag / (100 * vtime.Microsecond))
	if b > 10 {
		b = 10
	}
	a.Buckets[b]++
}

// Merge folds another tracker's observations into a (multiset union; used
// to aggregate per-shard trackers after a parallel run).
func (a *Accuracy) Merge(b Accuracy) {
	a.Count += b.Count
	a.SumLag += b.SumLag
	if b.MaxLag > a.MaxLag {
		a.MaxLag = b.MaxLag
	}
	if b.MaxHops > a.MaxHops {
		a.MaxHops = b.MaxHops
	}
	for i, n := range b.Buckets {
		a.Buckets[i] += n
	}
}

// MeanLag returns the average per-packet delivery lag.
func (a *Accuracy) MeanLag() vtime.Duration {
	if a.Count == 0 {
		return 0
	}
	return a.SumLag / vtime.Duration(a.Count)
}

// WithinBound reports whether every delivered packet's lag stayed within
// bound — the paper's headline accuracy claim is bound = hops × tick
// without debt handling and one tick with it.
func (a *Accuracy) WithinBound(bound vtime.Duration) bool {
	return a.MaxLag <= bound
}

func (a *Accuracy) String() string {
	return fmt.Sprintf("accuracy: %d pkts, mean lag %v, max lag %v (max hops %d)",
		a.Count, a.MeanLag(), a.MaxLag, a.MaxHops)
}
