package emucore

import (
	"fmt"

	"modelnet/internal/bind"
	"modelnet/internal/obs"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// DeliverFunc receives a packet at its destination VN.
type DeliverFunc func(pkt *pipes.Packet)

// HandoffFunc carries a cross-shard event out of a shard-mode emulator (see
// NewShard). pid >= 0 asks the owning shard to enqueue pkt into pipe pid at
// time at (a §2.2 core-to-core tunnel); pid < 0 asks the destination VN's
// home shard to complete delivery of pkt, where at is the delivery time and
// lag the accumulated quantization error.
type HandoffFunc func(target int, pkt *pipes.Packet, pid pipes.ID, at vtime.Time, lag vtime.Duration)

// Emulator is a cluster of core routers emulating one distilled topology.
// All state is driven by a single vtime.Scheduler; the emulator is not safe
// for concurrent use.
//
// In the default (sequential) mode one Emulator owns every pipe and core
// struct. In shard mode (NewShard) the Emulator is one core router of a
// parallel cluster: it owns only the pipes the POD assigns to its shard
// index, runs on its own scheduler, and emits HandoffFunc events when a
// packet's next pipe — or destination VN — lives on a peer shard. The
// parallel runtime (internal/parcore) routes those events between shards.
type Emulator struct {
	sched   *vtime.Scheduler
	prof    Profile
	graph   *topology.Graph
	binding *bind.Binding
	pod     *bind.POD

	pipes []*pipes.Pipe
	cores []*core

	// deliver is indexed by VN (dense IDs; grown on registration) — the
	// delivery path runs once per packet, so it must not pay a map lookup.
	deliver []DeliverFunc
	seq     uint64

	// pool recycles packet descriptors at delivery and drop; every
	// injection (and eager-mode handoff copy) draws from it.
	pool pipes.PacketPool

	// Deferred core re-arming for batch application (see BatchApply).
	applyDepth int
	dirty      []*core

	// Shard mode (see NewShard); shard is -1 in sequential mode.
	shard   int
	homes   []int // VN -> home shard, nil in sequential mode
	handoff HandoffFunc
	eager   bool // pre-emit handoffs at enqueue time (ideal profile only)

	// materialized counts live pipe slots (== NumPipes unless the world is
	// sparsely materialized, see NewShardSparse).
	materialized int
	// epocher is the routing table's reroute-epoch source, cached across
	// injections; nil for epoch-less tables.
	epocher interface{ Epoch() int32 }

	// Global counters.
	Injected  uint64 // packets offered to the core cluster
	Delivered uint64 // packets handed to destination VNs
	NoRoute   uint64 // injections with no route
	Accuracy  Accuracy
	DropHook  func(pkt *pipes.Packet, where string) // optional debug hook
	// OnDeliver, when set, observes every completed delivery with its
	// delivery time (before the VN callback runs). In parallel mode the
	// hook is installed per shard and may be invoked concurrently across
	// shards; implementations must be safe for that.
	OnDeliver func(pkt *pipes.Packet, at vtime.Time)
	// Trace, when non-nil, records virtual-time packet events (internal/obs).
	// Set it before the workload is installed; every hook is nil-safe, so a
	// disabled trace costs one branch per event. Dynamics engines attached
	// to this emulator record their steps through it too.
	Trace *obs.Tracer
}

// core is one emulated core router: a pipe heap plus CPU/NIC occupancy.
type core struct {
	idx  int
	heap *pipes.Heap

	cpuBusyUntil vtime.Time
	rxBusyUntil  vtime.Time
	txBusyUntil  vtime.Time

	pendingAt vtime.Time
	pendingID vtime.EventID
	dirtyArm  bool // re-arm deferred to the end of the current BatchApply

	// Stats.
	PktsIn        uint64
	PhysDropsCPU  uint64
	PhysDropsNIC  uint64
	PhysDropsTx   uint64
	TunnelsIn     uint64
	TunnelsOut    uint64
	TunnelTxBytes uint64
	CPUWork       vtime.Duration // total emulation CPU time consumed
	RxBytes       uint64
	TxBytes       uint64
}

// New builds an emulator over a distilled topology. The binding supplies
// the routing table and VN→edge→core mapping; pod assigns pipes to cores
// (nil means a single core owns everything). seed determinizes pipe loss.
func New(sched *vtime.Scheduler, g *topology.Graph, b *bind.Binding, pod *bind.POD, prof Profile, seed int64) (*Emulator, error) {
	return newEmulator(sched, g, b, pod, prof, seed, nil)
}

// newEmulator is the shared constructor. want, when non-nil, selects which
// pipe slots to materialize (sparse shard views); unselected slots stay nil
// and must never be touched by the hot path.
func newEmulator(sched *vtime.Scheduler, g *topology.Graph, b *bind.Binding, pod *bind.POD, prof Profile, seed int64, want func(i int) bool) (*Emulator, error) {
	if pod == nil {
		pod = bind.NewPOD(make([]int, g.NumLinks()), 1)
	}
	nCores := pod.Cores()
	if nCores < 1 {
		return nil, fmt.Errorf("emucore: POD has %d cores", nCores)
	}
	e := &Emulator{
		sched:   sched,
		prof:    prof,
		graph:   g,
		binding: b,
		pod:     pod,
		deliver: make([]DeliverFunc, b.NumVNs()),
		shard:   -1,
	}
	e.setEpocher()
	e.pipes = make([]*pipes.Pipe, g.NumLinks())
	for i, l := range g.Links {
		if want != nil && !want(i) {
			continue
		}
		// Pipe state is a pure function of (id, seed), so a sparsely
		// materialized pipe behaves bit-identically to its counterpart in the
		// full construction.
		e.pipes[i] = pipes.New(pipes.ID(i), pipeParams(l.Attr), seed)
		if want != nil {
			e.materialized++
		}
	}
	if want == nil {
		e.materialized = len(e.pipes)
	}
	e.cores = make([]*core, nCores)
	for i := range e.cores {
		e.cores[i] = &core{idx: i, heap: pipes.NewHeap(), pendingAt: vtime.Forever}
	}
	return e, nil
}

// NewShard builds the shard-mode emulator for one core of a parallel
// cluster: it processes injections and deliveries for the VNs whose home
// shard (per homes) is shard, emulates only the pipes the POD assigns to
// shard, and forwards everything else through handoff. Every shard
// constructs the full pipe set with identical per-pipe seeds so loss/RED
// randomness matches the sequential emulator pipe-for-pipe; a shard only
// ever touches the pipes it owns.
//
// Under an ideal profile (no tick, no CPU/NIC model) the shard runs in
// "eager" mode: a pipe's exit time is fixed the moment the packet is
// enqueued, so cross-shard handoffs are emitted at enqueue time, timestamped
// with the future exit. That gives the parallel runtime a full pipe latency
// of lookahead per crossing instead of being throttled by the actual
// cross-traffic event rate. With a resource model the tunnel-tx admission
// decision depends on core state at exit time, so handoffs are emitted
// lazily when the exit is processed.
func NewShard(sched *vtime.Scheduler, g *topology.Graph, b *bind.Binding, pod *bind.POD, prof Profile, seed int64, shard int, homes []int, handoff HandoffFunc) (*Emulator, error) {
	e, err := New(sched, g, b, pod, prof, seed)
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= len(e.cores) {
		return nil, fmt.Errorf("emucore: shard %d out of range [0,%d)", shard, len(e.cores))
	}
	if handoff == nil {
		return nil, fmt.Errorf("emucore: shard mode requires a handoff func")
	}
	if len(homes) < b.NumVNs() {
		return nil, fmt.Errorf("emucore: homes covers %d of %d VNs", len(homes), b.NumVNs())
	}
	e.shard = shard
	e.homes = homes
	e.handoff = handoff
	e.eager = prof.ideal()
	return e, nil
}

// NewShardSparse is NewShard over a sharded world view: only the pipes the
// POD assigns to this shard are materialized — O(shard) pipe memory instead
// of O(world) — and the graph may be a skeleton (topology.NewSkeleton) whose
// unmaterialized slots are placeholders. The hot path never touches a
// foreign pipe: enqueue hands a packet off before admission when its next
// pipe is foreign, and route segments always end at the first foreign pipe
// (bind.ShardTable), so a nil pipe slot being reached is a routing bug and
// panics rather than degrading silently.
func NewShardSparse(sched *vtime.Scheduler, g *topology.Graph, b *bind.Binding, pod *bind.POD, prof Profile, seed int64, shard int, homes []int, handoff HandoffFunc) (*Emulator, error) {
	if pod == nil {
		return nil, fmt.Errorf("emucore: sparse shard mode requires a POD")
	}
	k := pod.Cores()
	e, err := newEmulator(sched, g, b, pod, prof, seed, func(i int) bool {
		ow := pod.Owner(pipes.ID(i))
		return ow >= 0 && ow%k == shard
	})
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= len(e.cores) {
		return nil, fmt.Errorf("emucore: shard %d out of range [0,%d)", shard, len(e.cores))
	}
	if handoff == nil {
		return nil, fmt.Errorf("emucore: shard mode requires a handoff func")
	}
	if len(homes) < b.NumVNs() {
		return nil, fmt.Errorf("emucore: homes covers %d of %d VNs", len(homes), b.NumVNs())
	}
	e.shard = shard
	e.homes = homes
	e.handoff = handoff
	e.eager = prof.ideal()
	return e, nil
}

// MaterializedPipes reports how many pipe slots hold live pipes — equal to
// NumPipes except under sparse shard views, where it is the per-worker
// memory figure the scalability claim is about.
func (e *Emulator) MaterializedPipes() int { return e.materialized }

// setEpocher caches the table's epoch source (bind.ShardTable).
func (e *Emulator) setEpocher() {
	if ep, ok := e.binding.Table.(interface{ Epoch() int32 }); ok {
		e.epocher = ep
	} else {
		e.epocher = nil
	}
}

// routeEpoch is the epoch to pin on a packet injected now.
func (e *Emulator) routeEpoch() int32 {
	if e.epocher == nil {
		return 0
	}
	return e.epocher.Epoch()
}

// Shard reports the shard index, or -1 for a sequential emulator.
func (e *Emulator) Shard() int { return e.shard }

// Eager reports whether the shard emits handoffs at enqueue time (see
// NewShard); always false in sequential mode.
func (e *Emulator) Eager() bool { return e.eager }

func pipeParams(a topology.LinkAttrs) pipes.Params {
	return pipes.Params{
		BandwidthBps: a.BandwidthBps,
		Latency:      vtime.DurationOf(a.LatencySec),
		LossRate:     a.LossRate,
		QueuePkts:    a.QueuePkts,
	}
}

// Scheduler returns the virtual-time scheduler driving the emulation.
func (e *Emulator) Scheduler() *vtime.Scheduler { return e.sched }

// Now returns the current virtual time.
func (e *Emulator) Now() vtime.Time { return e.sched.Now() }

// Binding returns the binding this emulator was built with.
func (e *Emulator) Binding() *bind.Binding { return e.binding }

// Graph returns the distilled topology.
func (e *Emulator) Graph() *topology.Graph { return e.graph }

// Profile returns the hardware profile.
func (e *Emulator) Profile() Profile { return e.prof }

// Cores reports the number of core routers.
func (e *Emulator) Cores() int { return len(e.cores) }

// Pipe returns the live pipe for a distilled link, for inspection or
// dynamic re-parameterization (§4.3). Under a sparse shard view
// (NewShardSparse) slots outside the shard return nil.
func (e *Emulator) Pipe(id pipes.ID) *pipes.Pipe { return e.pipes[id] }

// NumPipes reports the number of pipes.
func (e *Emulator) NumPipes() int { return len(e.pipes) }

// ScanMaterialized visits every live pipe in ID order — the canonical
// iteration order checkpoint serialization depends on. Under a sparse shard
// view the unmaterialized slots are skipped.
func (e *Emulator) ScanMaterialized(visit func(p *pipes.Pipe)) {
	for _, p := range e.pipes {
		if p != nil {
			visit(p)
		}
	}
}

// SetPipeParams changes a pipe's parameters mid-run (cross traffic, fault
// injection). In-flight packets are unaffected.
func (e *Emulator) SetPipeParams(id pipes.ID, p pipes.Params) {
	e.pipes[id].SetParams(p)
}

// SetTable replaces the routing table (e.g., after recomputing shortest
// paths around a failed link).
func (e *Emulator) SetTable(t bind.Table) {
	e.binding.Table = t
	e.setEpocher()
}

// RegisterVN installs the delivery callback for a VN. Packets destined to
// an unregistered VN are counted delivered and discarded.
func (e *Emulator) RegisterVN(vn pipes.VN, fn DeliverFunc) {
	for int(vn) >= len(e.deliver) {
		e.deliver = append(e.deliver, nil)
	}
	e.deliver[vn] = fn
}

// CoreOfVN returns the core the given VN's edge node forwards through.
func (e *Emulator) coreOfVN(vn pipes.VN) *core {
	edge := e.binding.EdgeOf[vn]
	return e.cores[e.binding.CoreOf[edge]%len(e.cores)]
}

// CoreStats exposes a core's counters (index 0..Cores-1).
func (e *Emulator) CoreStats(i int) CoreStats {
	c := e.cores[i]
	return CoreStats{
		PktsIn:        c.PktsIn,
		PhysDropsCPU:  c.PhysDropsCPU,
		PhysDropsNIC:  c.PhysDropsNIC,
		PhysDropsTx:   c.PhysDropsTx,
		TunnelsIn:     c.TunnelsIn,
		TunnelsOut:    c.TunnelsOut,
		TunnelTxBytes: c.TunnelTxBytes,
		CPUWork:       c.CPUWork,
		RxBytes:       c.RxBytes,
		TxBytes:       c.TxBytes,
	}
}

// CoreStats is a snapshot of one core's counters.
type CoreStats struct {
	PktsIn        uint64
	PhysDropsCPU  uint64
	PhysDropsNIC  uint64
	PhysDropsTx   uint64
	TunnelsIn     uint64
	TunnelsOut    uint64
	TunnelTxBytes uint64
	CPUWork       vtime.Duration
	RxBytes       uint64
	TxBytes       uint64
}

// Totals aggregates conservation counters: every injected packet is
// eventually delivered, physically dropped, or virtually dropped in a pipe
// (or still in flight).
type Totals struct {
	Injected     uint64
	Delivered    uint64
	NoRoute      uint64
	PhysDrops    uint64
	VirtualDrops uint64
	InFlight     int
}

// DropsByReason sums the per-reason virtual drop counters over every pipe
// (the unified pipes.DropReason taxonomy, indexable by reason), folding
// route-lookup rejections into the DropUnreachable slot. Gateway-side
// reasons (oversize, gateway-reject) are counted by the live edge and
// merged at the report layer.
func (e *Emulator) DropsByReason() []uint64 {
	out := make([]uint64, pipes.NumDropReasons)
	for _, p := range e.pipes {
		if p == nil {
			continue // sparse world: slot outside this shard
		}
		for r, n := range p.Drops {
			out[r] += n
		}
	}
	out[pipes.DropUnreachable] += e.NoRoute
	return out
}

// Totals returns the current conservation counters.
func (e *Emulator) Totals() Totals {
	t := Totals{Injected: e.Injected, Delivered: e.Delivered, NoRoute: e.NoRoute}
	for _, c := range e.cores {
		t.PhysDrops += c.PhysDropsCPU + c.PhysDropsNIC + c.PhysDropsTx
	}
	for _, p := range e.pipes {
		if p == nil {
			continue // sparse world: slot outside this shard
		}
		t.VirtualDrops += p.TotalDrops()
		t.InFlight += p.Len()
	}
	return t
}

// Inject offers a packet from src's edge node to the core cluster. It
// reports whether the packet was accepted (false = physical drop or no
// route). Virtual (emulated) drops inside pipes are invisible here, as they
// are to real senders.
func (e *Emulator) Inject(src, dst pipes.VN, size int, payload any) bool {
	route, ok := e.binding.Table.Lookup(src, dst)
	if !ok {
		e.NoRoute++
		e.Trace.Unreachable(e.sched.Now(), src, dst, size, e.Trace.NextTID(src))
		return false
	}
	now := e.sched.Now()
	c := e.coreOfVN(src)
	if e.shard >= 0 {
		// Shard mode: the runtime homes each VN on the shard owning its
		// access pipes, so ingress always charges this shard's core.
		c = e.cores[e.shard]
	}

	// The trace ID is minted before physical admission: the routed-injection
	// sequence per source VN is identical in every execution mode, while
	// admission outcomes are per-core wall effects.
	tid := e.Trace.NextTID(src)

	// Physical admission: NIC receive ring, then CPU (interrupt handling
	// is starved when the emulation runs behind).
	if !c.admitRx(e, now, size) {
		c.PhysDropsNIC++
		e.Trace.PhysDrop(now, obs.PhysNICRx, tid, src, dst, size)
		e.dropHook(nil, "nic-rx")
		return false
	}
	if !c.admitCPU(e, now, e.prof.CPU.PerPacket) {
		c.PhysDropsCPU++
		e.Trace.PhysDrop(now, obs.PhysCPU, tid, src, dst, size)
		e.dropHook(nil, "cpu")
		return false
	}
	c.PktsIn++
	e.Injected++
	e.seq++
	pkt := e.pool.Get()
	*pkt = pipes.Packet{
		Seq:      e.seq | uint64(e.shard+1)<<48,
		Size:     size,
		Src:      src,
		Dst:      dst,
		Route:    route,
		Epoch:    e.routeEpoch(),
		Injected: now,
		Trace:    tid,
		Payload:  payload,
	}
	if len(route) == 0 {
		// Loopback: no pipes to traverse. Deliver asynchronously so the
		// sender's call stack never reenters its own receive path. The
		// delivery's consequences run on dst's host and nowhere else, so the
		// event carries dst's owner claim — an untagged loopback would pin
		// the shard's adaptive horizon to the frontier minimum.
		e.sched.AtTagged(now, int32(dst), func() { e.finish(c, pkt, now, now) })
		return true
	}
	e.enqueue(c, pkt, route[0], now)
	return true
}

// enqueue places pkt into pipe pid at logical time at, tunneling first if
// the pipe's owner differs from the current core. In shard mode a tunnel to
// a pipe owned by a peer shard performs only the sender-side accounting and
// emits a handoff; the owning shard finishes admission in TunnelIn.
func (e *Emulator) enqueue(cur *core, pkt *pipes.Packet, pid pipes.ID, at vtime.Time) {
	ownerIdx := e.pod.Owner(pid) % len(e.cores)
	owner := e.cores[ownerIdx]
	now := e.sched.Now()
	if owner != cur {
		// Cross-core transition (§3.3): descriptor (or full packet)
		// tunneled over the physical cluster network.
		wire := e.wireSize(pkt)
		cur.forceCPU(e, now, e.prof.CPU.TunnelTx)
		if !cur.admitTx(e, now, wire) {
			cur.PhysDropsTx++
			e.Trace.PhysDrop(now, obs.PhysTunnelTx, pkt.Trace, pkt.Src, pkt.Dst, pkt.Size)
			e.dropHook(pkt, "tunnel-tx")
			e.pool.Put(pkt)
			return
		}
		cur.TunnelsOut++
		cur.TunnelTxBytes += uint64(wire)
		if e.shard >= 0 && ownerIdx != e.shard {
			e.Trace.Handoff(at, ownerIdx, pid, pkt)
			e.handoff(ownerIdx, pkt, pid, at, 0)
			return
		}
		if !owner.admitRx(e, now, wire) {
			owner.PhysDropsNIC++
			e.Trace.PhysDrop(now, obs.PhysTunnelRx, pkt.Trace, pkt.Src, pkt.Dst, pkt.Size)
			e.dropHook(pkt, "tunnel-rx")
			e.pool.Put(pkt)
			return
		}
		if !owner.admitCPU(e, now, e.prof.CPU.TunnelRx) {
			owner.PhysDropsCPU++
			e.Trace.PhysDrop(now, obs.PhysTunnelCPU, pkt.Trace, pkt.Src, pkt.Dst, pkt.Size)
			e.dropHook(pkt, "tunnel-cpu")
			e.pool.Put(pkt)
			return
		}
		owner.TunnelsIn++
	}
	e.localEnqueue(owner, pkt, pid, at)
}

// wireSize is the byte count a tunneled packet occupies on the physical
// cluster network (§2.2 payload caching tunnels descriptors only).
func (e *Emulator) wireSize(pkt *pipes.Packet) int {
	if e.prof.PayloadCaching && e.prof.DescriptorBytes > 0 {
		return e.prof.DescriptorBytes
	}
	return pkt.Size
}

// localEnqueue inserts pkt into owned pipe pid at time at and rearms the
// core. In eager shard mode the pipe's exit time — fixed here, at enqueue —
// is used to pre-emit any cross-shard handoff the exit will cause, giving
// the parallel runtime a pipe latency of lookahead.
func (e *Emulator) localEnqueue(c *core, pkt *pipes.Packet, pid pipes.ID, at vtime.Time) {
	reason, exit := e.pipes[pid].Enqueue(pkt, at)
	if reason != pipes.DropNone {
		e.Trace.PipeDrop(at, pid, pkt, reason)
		e.dropHook(pkt, "pipe-"+reason.String())
		e.pool.Put(pkt)
		return
	}
	e.Trace.PipeEnqueue(at, pid, pkt)
	c.heap.Update(e.pipes[pid])
	e.scheduleCore(c)
	if e.eager {
		e.preEmit(c, pkt, exit)
	}
}

// preEmit sends the cross-shard handoff a packet's exit from its current
// pipe will cause, timestamped with the (already exact) future exit time.
// The peer shard receives a private copy; the original stays in the local
// pipe purely to occupy queue slots and transmission time, and its exit is
// ignored by advance. Only valid in eager mode, where admission paths are
// no-ops and the exit-time decisions are therefore known at enqueue time.
func (e *Emulator) preEmit(c *core, pkt *pipes.Packet, exit vtime.Time) {
	next := pkt.Hop + 1
	if next < len(pkt.Route) {
		npid := pkt.Route[next]
		tgt := e.pod.Owner(npid) % len(e.cores)
		if tgt == e.shard {
			return
		}
		cp := e.pool.Get()
		*cp = *pkt
		cp.Hop = next
		c.TunnelsOut++
		c.TunnelTxBytes += uint64(e.wireSize(pkt))
		e.Trace.Handoff(exit, tgt, npid, cp)
		e.handoff(tgt, cp, npid, exit, 0)
		return
	}
	if home := e.homes[pkt.Dst]; home != e.shard {
		// Final hop lands on a peer shard's VN: hand the delivery over.
		// Lag is zero by construction (eager mode has no quantization).
		cp := e.pool.Get()
		*cp = *pkt
		e.Trace.Handoff(exit, home, -1, cp)
		e.handoff(home, cp, -1, exit, 0)
	}
}

// TunnelIn accepts a packet handed off by a peer shard: the receive half of
// the core-to-core tunnel (admission, then pipe entry). pid must be owned
// by this shard. Called by the parallel runtime at the handoff's fire time.
func (e *Emulator) TunnelIn(pkt *pipes.Packet, pid pipes.ID, at vtime.Time) {
	c := e.cores[e.shard]
	now := e.sched.Now()
	wire := e.wireSize(pkt)
	if !c.admitRx(e, now, wire) {
		c.PhysDropsNIC++
		e.Trace.PhysDrop(now, obs.PhysTunnelRx, pkt.Trace, pkt.Src, pkt.Dst, pkt.Size)
		e.dropHook(pkt, "tunnel-rx")
		e.pool.Put(pkt)
		return
	}
	if !c.admitCPU(e, now, e.prof.CPU.TunnelRx) {
		c.PhysDropsCPU++
		e.Trace.PhysDrop(now, obs.PhysTunnelCPU, pkt.Trace, pkt.Src, pkt.Dst, pkt.Size)
		e.dropHook(pkt, "tunnel-cpu")
		e.pool.Put(pkt)
		return
	}
	c.TunnelsIn++
	e.localEnqueue(c, pkt, pid, at)
}

// runCore is one scheduler activation for a core: drain every pipe whose
// deadline has arrived, move packets along their routes, reinsert pipes
// with their new deadlines (the §2.2 scheduler loop).
func (e *Emulator) runCore(c *core) {
	now := e.sched.Now()
	c.pendingAt = vtime.Forever
	c.heap.PopReady(now, func(p *pipes.Pipe) {
		p.DequeueReady(now, func(pkt *pipes.Packet, exactExit vtime.Time) {
			e.advance(c, pkt, exactExit, now)
		})
		c.heap.Update(p)
	})
	e.scheduleCore(c)
}

// advance moves a packet that just exited a pipe to its next pipe or its
// destination. In eager shard mode, exits whose consequence lives on a peer
// shard were already pre-emitted at enqueue time (see preEmit) and are
// ignored here.
func (e *Emulator) advance(c *core, pkt *pipes.Packet, exactExit, now vtime.Time) {
	e.Trace.PipeDequeue(exactExit, pkt.Route[pkt.Hop], pkt)
	c.forceCPU(e, now, e.prof.CPU.PerHop)
	pkt.Hop++
	if pkt.Hop < len(pkt.Route) {
		if e.eager && e.pod.Owner(pkt.Route[pkt.Hop])%len(e.cores) != e.shard {
			e.pool.Put(pkt) // a copy crossed at enqueue time
			return
		}
		at := now
		if e.prof.DebtHandling {
			// Packet debt: enter the next pipe at the exact exit time of
			// the previous one, canceling accumulated quantization error.
			at = exactExit
		} else {
			pkt.Lag += now.Sub(exactExit)
		}
		e.enqueue(c, pkt, pkt.Route[pkt.Hop], at)
		return
	}
	if e.eager && e.homes[pkt.Dst] != e.shard {
		e.pool.Put(pkt) // the delivery copy crossed at enqueue time
		return
	}
	e.finish(c, pkt, exactExit, now)
}

// finish delivers a packet to its destination VN's edge node, handing off
// to the VN's home shard when it lives elsewhere.
func (e *Emulator) finish(c *core, pkt *pipes.Packet, exactExit, now vtime.Time) {
	if !c.admitTx(e, now, pkt.Size) {
		c.PhysDropsTx++
		e.Trace.PhysDrop(now, obs.PhysEdgeTx, pkt.Trace, pkt.Src, pkt.Dst, pkt.Size)
		e.dropHook(pkt, "edge-tx")
		e.pool.Put(pkt)
		return
	}
	lag := pkt.Lag + now.Sub(exactExit)
	if e.shard >= 0 && e.homes[pkt.Dst] != e.shard {
		e.Trace.Handoff(now, e.homes[pkt.Dst], -1, pkt)
		e.handoff(e.homes[pkt.Dst], pkt, -1, now, lag)
		return
	}
	e.CompleteDelivery(pkt, lag, now)
}

// CompleteDelivery finishes a delivery on the destination VN's home shard
// (or inline, in sequential mode): counters, accuracy, hooks, VN callback.
// at is the delivery time. The descriptor is recycled when the callbacks
// return: hooks and delivery functions must not retain it.
func (e *Emulator) CompleteDelivery(pkt *pipes.Packet, lag vtime.Duration, at vtime.Time) {
	e.Delivered++
	e.Trace.Deliver(at, pkt)
	e.Accuracy.Record(lag, len(pkt.Route))
	if e.OnDeliver != nil {
		e.OnDeliver(pkt, at)
	}
	if d := int(pkt.Dst); d < len(e.deliver) {
		if fn := e.deliver[d]; fn != nil {
			fn(pkt)
		}
	}
	e.pool.Put(pkt)
}

// BatchApply runs fn with core (re-)arming deferred: every pipe insertion
// inside fn marks its core dirty instead of cancelling and re-scheduling
// the core's activation event, and each dirty core is armed exactly once
// when the outermost BatchApply returns. The parallel runtime wraps each
// deadline cluster of cross-shard messages in it, so applying N tunnel
// entries costs one scheduler arm instead of up to N cancel/insert pairs.
func (e *Emulator) BatchApply(fn func()) {
	e.applyDepth++
	fn()
	e.applyDepth--
	if e.applyDepth > 0 {
		return
	}
	for _, c := range e.dirty {
		c.dirtyArm = false
		e.scheduleCore(c)
	}
	e.dirty = e.dirty[:0]
}

// ReleasePacket returns a descriptor to the emulator's free list. It is for
// transports that serialize a handed-off packet (the federation data
// plane): once the bytes are on the wire the descriptor is dead, and the
// emulator that produced it gets it back. Callers must hold the only
// reference.
func (e *Emulator) ReleasePacket(pkt *pipes.Packet) { e.pool.Put(pkt) }

func (e *Emulator) dropHook(pkt *pipes.Packet, where string) {
	if e.DropHook != nil {
		e.DropHook(pkt, where)
	}
}

// scheduleCore (re)arms the core's next activation at the quantized time of
// its earliest pipe deadline. Inside a BatchApply the re-arm is deferred:
// the core is marked dirty and armed once at the end of the batch.
func (e *Emulator) scheduleCore(c *core) {
	if e.applyDepth > 0 {
		if !c.dirtyArm {
			c.dirtyArm = true
			e.dirty = append(e.dirty, c)
		}
		return
	}
	next := c.heap.Min()
	if next == vtime.Forever {
		if c.pendingAt != vtime.Forever {
			e.sched.Cancel(c.pendingID)
			c.pendingAt = vtime.Forever
		}
		return
	}
	want := e.quantize(next)
	if want == c.pendingAt {
		return
	}
	if c.pendingAt != vtime.Forever {
		e.sched.Cancel(c.pendingID)
	}
	c.pendingAt = want
	c.pendingID = e.sched.At(want, func() { e.runCore(c) })
}

// quantize rounds a deadline up to the next scheduler tick — the hardware
// timer the paper's core wakes on. Exact when Tick is zero (ideal mode).
func (e *Emulator) quantize(t vtime.Time) vtime.Time {
	tick := vtime.Time(e.prof.Tick)
	if tick <= 0 || t == vtime.Forever {
		return t
	}
	q := (t + tick - 1) / tick * tick
	if q < e.sched.Now() {
		q = e.sched.Now()
	}
	return q
}

// ---- core capacity accounting ----

// admitRx models the NIC receive path: serialization at NICBps with a
// bounded ring. Reports false (physical drop) when the ring is over.
func (c *core) admitRx(e *Emulator, now vtime.Time, size int) bool {
	if e.prof.NICBps <= 0 {
		return true
	}
	d := vtime.Duration(float64(size*8) / e.prof.NICBps * float64(vtime.Second))
	start := now
	if c.rxBusyUntil > start {
		start = c.rxBusyUntil
	}
	if start.Sub(now) > e.prof.nicBacklog() {
		return false
	}
	c.rxBusyUntil = start.Add(d)
	c.RxBytes += uint64(size)
	return true
}

// admitTx models the NIC transmit path.
func (c *core) admitTx(e *Emulator, now vtime.Time, size int) bool {
	if e.prof.NICBps <= 0 {
		return true
	}
	d := vtime.Duration(float64(size*8) / e.prof.NICBps * float64(vtime.Second))
	start := now
	if c.txBusyUntil > start {
		start = c.txBusyUntil
	}
	if start.Sub(now) > e.prof.nicBacklog() {
		return false
	}
	c.txBusyUntil = start.Add(d)
	c.TxBytes += uint64(size)
	return true
}

// admitCPU charges ingress CPU work, refusing when the emulation has run
// ahead of real time by more than the backlog bound (the paper's "NIC drops
// additional packets beyond this point").
func (c *core) admitCPU(e *Emulator, now vtime.Time, d vtime.Duration) bool {
	if d <= 0 {
		return true
	}
	start := now
	if c.cpuBusyUntil > start {
		start = c.cpuBusyUntil
	}
	if start.Sub(now) > e.prof.cpuBacklog() {
		return false
	}
	c.cpuBusyUntil = start.Add(d)
	c.CPUWork += d
	return true
}

// forceCPU charges mandatory emulation work (it runs at the highest
// priority and is never shed; overload manifests as ingress drops instead).
func (c *core) forceCPU(e *Emulator, now vtime.Time, d vtime.Duration) {
	if d <= 0 {
		return
	}
	start := now
	if c.cpuBusyUntil > start {
		start = c.cpuBusyUntil
	}
	c.cpuBusyUntil = start.Add(d)
	c.CPUWork += d
}

// NextPipeDeadline reports the earliest exact (unquantized) exit deadline
// among this shard's occupied pipes, or vtime.Forever when all are idle.
// The parallel runtime folds this into its safe-advance bound: in lazy
// shard mode a handoff can fire as soon as the earliest border pipe drains.
func (e *Emulator) NextPipeDeadline() vtime.Time {
	if e.shard < 0 {
		return e.cores[0].heap.Min()
	}
	return e.cores[e.shard].heap.Min()
}

// NextAppEventTime reports the time of the shard's earliest scheduled event
// other than its own core activation, or vtime.Forever when none is pending.
// Core activations are pipe exits — the adaptive horizon bounds those through
// the occupied-pipe scan, so excluding the activation here lets application
// timers, applied cross-shard clusters, and dynamics steps be priced with
// their own (injection/frontier) crossing distance instead of the pipe one.
func (e *Emulator) NextAppEventTime() vtime.Time {
	c := e.cores[0]
	if e.shard >= 0 {
		c = e.cores[e.shard]
	}
	if c.pendingAt == vtime.Forever {
		return e.sched.NextEventTime()
	}
	return e.sched.NextEventTimeExcept(c.pendingID)
}

// ScanAppEvents visits every pending scheduler event other than the shard's
// own core activation, with its time and owner claim (the VN tag from
// vtime.Scheduler.AtTagged, or vtime.NoTag). Core activations are pipe
// exits — the adaptive horizon bounds those through the occupied-pipe scan —
// so excluding the activation here lets application timers, applied
// cross-shard clusters, and dynamics steps be priced individually: a tagged
// event with the owning VN's crossing distance, an untagged one with the
// shard-wide (injection/frontier) minimum. O(pending).
func (e *Emulator) ScanAppEvents(visit func(at vtime.Time, vn int32)) {
	c := e.cores[0]
	if e.shard >= 0 {
		c = e.cores[e.shard]
	}
	skip := c.pendingID
	hasPending := c.pendingAt != vtime.Forever
	e.sched.ScanPending(func(at vtime.Time, tag int32, id vtime.EventID) {
		if hasPending && id == skip {
			return
		}
		visit(at, tag)
	})
}

// ScanOccupied visits every occupied pipe owned by this shard with its
// exact (unquantized) exit deadline, in unspecified order. O(occupied).
func (e *Emulator) ScanOccupied(visit func(pipes.ID, vtime.Time)) {
	c := e.cores[0]
	if e.shard >= 0 {
		c = e.cores[e.shard]
	}
	c.heap.Scan(visit)
}

// CPUUtilization reports core i's cumulative CPU busy fraction since t0.
func (e *Emulator) CPUUtilization(i int, since vtime.Time) float64 {
	elapsed := e.sched.Now().Sub(since)
	if elapsed <= 0 {
		return 0
	}
	return float64(e.cores[i].CPUWork) / float64(elapsed)
}
