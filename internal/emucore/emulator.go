package emucore

import (
	"fmt"

	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// DeliverFunc receives a packet at its destination VN.
type DeliverFunc func(pkt *pipes.Packet)

// Emulator is a cluster of core routers emulating one distilled topology.
// All state is driven by a single vtime.Scheduler; the emulator is not safe
// for concurrent use.
type Emulator struct {
	sched   *vtime.Scheduler
	prof    Profile
	graph   *topology.Graph
	binding *bind.Binding
	pod     *bind.POD

	pipes []*pipes.Pipe
	cores []*core

	deliver map[pipes.VN]DeliverFunc
	seq     uint64

	// Global counters.
	Injected  uint64 // packets offered to the core cluster
	Delivered uint64 // packets handed to destination VNs
	NoRoute   uint64 // injections with no route
	Accuracy  Accuracy
	DropHook  func(pkt *pipes.Packet, where string) // optional debug hook
}

// core is one emulated core router: a pipe heap plus CPU/NIC occupancy.
type core struct {
	idx  int
	heap *pipes.Heap

	cpuBusyUntil vtime.Time
	rxBusyUntil  vtime.Time
	txBusyUntil  vtime.Time

	pendingAt vtime.Time
	pendingID vtime.EventID

	// Stats.
	PktsIn        uint64
	PhysDropsCPU  uint64
	PhysDropsNIC  uint64
	PhysDropsTx   uint64
	TunnelsIn     uint64
	TunnelsOut    uint64
	TunnelTxBytes uint64
	CPUWork       vtime.Duration // total emulation CPU time consumed
	RxBytes       uint64
	TxBytes       uint64
}

// New builds an emulator over a distilled topology. The binding supplies
// the routing table and VN→edge→core mapping; pod assigns pipes to cores
// (nil means a single core owns everything). seed determinizes pipe loss.
func New(sched *vtime.Scheduler, g *topology.Graph, b *bind.Binding, pod *bind.POD, prof Profile, seed int64) (*Emulator, error) {
	if pod == nil {
		pod = bind.NewPOD(make([]int, g.NumLinks()), 1)
	}
	nCores := pod.Cores()
	if nCores < 1 {
		return nil, fmt.Errorf("emucore: POD has %d cores", nCores)
	}
	e := &Emulator{
		sched:   sched,
		prof:    prof,
		graph:   g,
		binding: b,
		pod:     pod,
		deliver: make(map[pipes.VN]DeliverFunc),
	}
	e.pipes = make([]*pipes.Pipe, g.NumLinks())
	for i, l := range g.Links {
		e.pipes[i] = pipes.New(pipes.ID(i), pipeParams(l.Attr), seed)
	}
	e.cores = make([]*core, nCores)
	for i := range e.cores {
		e.cores[i] = &core{idx: i, heap: pipes.NewHeap(), pendingAt: vtime.Forever}
	}
	return e, nil
}

func pipeParams(a topology.LinkAttrs) pipes.Params {
	return pipes.Params{
		BandwidthBps: a.BandwidthBps,
		Latency:      vtime.DurationOf(a.LatencySec),
		LossRate:     a.LossRate,
		QueuePkts:    a.QueuePkts,
	}
}

// Scheduler returns the virtual-time scheduler driving the emulation.
func (e *Emulator) Scheduler() *vtime.Scheduler { return e.sched }

// Now returns the current virtual time.
func (e *Emulator) Now() vtime.Time { return e.sched.Now() }

// Binding returns the binding this emulator was built with.
func (e *Emulator) Binding() *bind.Binding { return e.binding }

// Graph returns the distilled topology.
func (e *Emulator) Graph() *topology.Graph { return e.graph }

// Profile returns the hardware profile.
func (e *Emulator) Profile() Profile { return e.prof }

// Cores reports the number of core routers.
func (e *Emulator) Cores() int { return len(e.cores) }

// Pipe returns the live pipe for a distilled link, for inspection or
// dynamic re-parameterization (§4.3).
func (e *Emulator) Pipe(id pipes.ID) *pipes.Pipe { return e.pipes[id] }

// NumPipes reports the number of pipes.
func (e *Emulator) NumPipes() int { return len(e.pipes) }

// SetPipeParams changes a pipe's parameters mid-run (cross traffic, fault
// injection). In-flight packets are unaffected.
func (e *Emulator) SetPipeParams(id pipes.ID, p pipes.Params) {
	e.pipes[id].SetParams(p)
}

// SetTable replaces the routing table (e.g., after recomputing shortest
// paths around a failed link).
func (e *Emulator) SetTable(t bind.Table) { e.binding.Table = t }

// RegisterVN installs the delivery callback for a VN. Packets destined to
// an unregistered VN are counted delivered and discarded.
func (e *Emulator) RegisterVN(vn pipes.VN, fn DeliverFunc) {
	e.deliver[vn] = fn
}

// CoreOfVN returns the core the given VN's edge node forwards through.
func (e *Emulator) coreOfVN(vn pipes.VN) *core {
	edge := e.binding.EdgeOf[vn]
	return e.cores[e.binding.CoreOf[edge]%len(e.cores)]
}

// CoreStats exposes a core's counters (index 0..Cores-1).
func (e *Emulator) CoreStats(i int) CoreStats {
	c := e.cores[i]
	return CoreStats{
		PktsIn:        c.PktsIn,
		PhysDropsCPU:  c.PhysDropsCPU,
		PhysDropsNIC:  c.PhysDropsNIC,
		PhysDropsTx:   c.PhysDropsTx,
		TunnelsIn:     c.TunnelsIn,
		TunnelsOut:    c.TunnelsOut,
		TunnelTxBytes: c.TunnelTxBytes,
		CPUWork:       c.CPUWork,
		RxBytes:       c.RxBytes,
		TxBytes:       c.TxBytes,
	}
}

// CoreStats is a snapshot of one core's counters.
type CoreStats struct {
	PktsIn        uint64
	PhysDropsCPU  uint64
	PhysDropsNIC  uint64
	PhysDropsTx   uint64
	TunnelsIn     uint64
	TunnelsOut    uint64
	TunnelTxBytes uint64
	CPUWork       vtime.Duration
	RxBytes       uint64
	TxBytes       uint64
}

// Totals aggregates conservation counters: every injected packet is
// eventually delivered, physically dropped, or virtually dropped in a pipe
// (or still in flight).
type Totals struct {
	Injected     uint64
	Delivered    uint64
	NoRoute      uint64
	PhysDrops    uint64
	VirtualDrops uint64
	InFlight     int
}

// Totals returns the current conservation counters.
func (e *Emulator) Totals() Totals {
	t := Totals{Injected: e.Injected, Delivered: e.Delivered, NoRoute: e.NoRoute}
	for _, c := range e.cores {
		t.PhysDrops += c.PhysDropsCPU + c.PhysDropsNIC + c.PhysDropsTx
	}
	for _, p := range e.pipes {
		t.VirtualDrops += p.TotalDrops()
		t.InFlight += p.Len()
	}
	return t
}

// Inject offers a packet from src's edge node to the core cluster. It
// reports whether the packet was accepted (false = physical drop or no
// route). Virtual (emulated) drops inside pipes are invisible here, as they
// are to real senders.
func (e *Emulator) Inject(src, dst pipes.VN, size int, payload any) bool {
	route, ok := e.binding.Table.Lookup(src, dst)
	if !ok {
		e.NoRoute++
		return false
	}
	now := e.sched.Now()
	c := e.coreOfVN(src)

	// Physical admission: NIC receive ring, then CPU (interrupt handling
	// is starved when the emulation runs behind).
	if !c.admitRx(e, now, size) {
		c.PhysDropsNIC++
		e.dropHook(nil, "nic-rx")
		return false
	}
	if !c.admitCPU(e, now, e.prof.CPU.PerPacket) {
		c.PhysDropsCPU++
		e.dropHook(nil, "cpu")
		return false
	}
	c.PktsIn++
	e.Injected++
	e.seq++
	pkt := &pipes.Packet{
		Seq:      e.seq,
		Size:     size,
		Src:      src,
		Dst:      dst,
		Route:    route,
		Injected: now,
		Payload:  payload,
	}
	if len(route) == 0 {
		// Loopback: no pipes to traverse. Deliver asynchronously so the
		// sender's call stack never reenters its own receive path.
		e.sched.At(now, func() { e.finish(c, pkt, now, now) })
		return true
	}
	e.enqueue(c, pkt, route[0], now)
	return true
}

// enqueue places pkt into pipe pid at logical time at, tunneling first if
// the pipe's owner differs from the current core.
func (e *Emulator) enqueue(cur *core, pkt *pipes.Packet, pid pipes.ID, at vtime.Time) {
	owner := e.cores[e.pod.Owner(pid)%len(e.cores)]
	now := e.sched.Now()
	if owner != cur {
		// Cross-core transition (§3.3): descriptor (or full packet)
		// tunneled over the physical cluster network.
		wire := pkt.Size
		if e.prof.PayloadCaching && e.prof.DescriptorBytes > 0 {
			wire = e.prof.DescriptorBytes
		}
		cur.forceCPU(e, now, e.prof.CPU.TunnelTx)
		if !cur.admitTx(e, now, wire) {
			cur.PhysDropsTx++
			e.dropHook(pkt, "tunnel-tx")
			return
		}
		cur.TunnelsOut++
		cur.TunnelTxBytes += uint64(wire)
		if !owner.admitRx(e, now, wire) {
			owner.PhysDropsNIC++
			e.dropHook(pkt, "tunnel-rx")
			return
		}
		if !owner.admitCPU(e, now, e.prof.CPU.TunnelRx) {
			owner.PhysDropsCPU++
			e.dropHook(pkt, "tunnel-cpu")
			return
		}
		owner.TunnelsIn++
	}
	if reason, _ := e.pipes[pid].Enqueue(pkt, at); reason != pipes.DropNone {
		e.dropHook(pkt, "pipe-"+reason.String())
		return
	}
	owner.heap.Update(e.pipes[pid])
	e.scheduleCore(owner)
}

// runCore is one scheduler activation for a core: drain every pipe whose
// deadline has arrived, move packets along their routes, reinsert pipes
// with their new deadlines (the §2.2 scheduler loop).
func (e *Emulator) runCore(c *core) {
	now := e.sched.Now()
	c.pendingAt = vtime.Forever
	c.heap.PopReady(now, func(p *pipes.Pipe) {
		p.DequeueReady(now, func(pkt *pipes.Packet, exactExit vtime.Time) {
			e.advance(c, pkt, exactExit, now)
		})
		c.heap.Update(p)
	})
	e.scheduleCore(c)
}

// advance moves a packet that just exited a pipe to its next pipe or its
// destination.
func (e *Emulator) advance(c *core, pkt *pipes.Packet, exactExit, now vtime.Time) {
	c.forceCPU(e, now, e.prof.CPU.PerHop)
	pkt.Hop++
	if pkt.Hop < len(pkt.Route) {
		at := now
		if e.prof.DebtHandling {
			// Packet debt: enter the next pipe at the exact exit time of
			// the previous one, canceling accumulated quantization error.
			at = exactExit
		} else {
			pkt.Lag += now.Sub(exactExit)
		}
		e.enqueue(c, pkt, pkt.Route[pkt.Hop], at)
		return
	}
	e.finish(c, pkt, exactExit, now)
}

// finish delivers a packet to its destination VN's edge node.
func (e *Emulator) finish(c *core, pkt *pipes.Packet, exactExit, now vtime.Time) {
	if !c.admitTx(e, now, pkt.Size) {
		c.PhysDropsTx++
		e.dropHook(pkt, "edge-tx")
		return
	}
	e.Delivered++
	lag := pkt.Lag + now.Sub(exactExit)
	e.Accuracy.Record(lag, len(pkt.Route))
	if fn := e.deliver[pkt.Dst]; fn != nil {
		fn(pkt)
	}
}

func (e *Emulator) dropHook(pkt *pipes.Packet, where string) {
	if e.DropHook != nil {
		e.DropHook(pkt, where)
	}
}

// scheduleCore (re)arms the core's next activation at the quantized time of
// its earliest pipe deadline.
func (e *Emulator) scheduleCore(c *core) {
	next := c.heap.Min()
	if next == vtime.Forever {
		if c.pendingAt != vtime.Forever {
			e.sched.Cancel(c.pendingID)
			c.pendingAt = vtime.Forever
		}
		return
	}
	want := e.quantize(next)
	if want == c.pendingAt {
		return
	}
	if c.pendingAt != vtime.Forever {
		e.sched.Cancel(c.pendingID)
	}
	c.pendingAt = want
	c.pendingID = e.sched.At(want, func() { e.runCore(c) })
}

// quantize rounds a deadline up to the next scheduler tick — the hardware
// timer the paper's core wakes on. Exact when Tick is zero (ideal mode).
func (e *Emulator) quantize(t vtime.Time) vtime.Time {
	tick := vtime.Time(e.prof.Tick)
	if tick <= 0 || t == vtime.Forever {
		return t
	}
	q := (t + tick - 1) / tick * tick
	if q < e.sched.Now() {
		q = e.sched.Now()
	}
	return q
}

// ---- core capacity accounting ----

// admitRx models the NIC receive path: serialization at NICBps with a
// bounded ring. Reports false (physical drop) when the ring is over.
func (c *core) admitRx(e *Emulator, now vtime.Time, size int) bool {
	if e.prof.NICBps <= 0 {
		return true
	}
	d := vtime.Duration(float64(size*8) / e.prof.NICBps * float64(vtime.Second))
	start := now
	if c.rxBusyUntil > start {
		start = c.rxBusyUntil
	}
	if start.Sub(now) > e.prof.nicBacklog() {
		return false
	}
	c.rxBusyUntil = start.Add(d)
	c.RxBytes += uint64(size)
	return true
}

// admitTx models the NIC transmit path.
func (c *core) admitTx(e *Emulator, now vtime.Time, size int) bool {
	if e.prof.NICBps <= 0 {
		return true
	}
	d := vtime.Duration(float64(size*8) / e.prof.NICBps * float64(vtime.Second))
	start := now
	if c.txBusyUntil > start {
		start = c.txBusyUntil
	}
	if start.Sub(now) > e.prof.nicBacklog() {
		return false
	}
	c.txBusyUntil = start.Add(d)
	c.TxBytes += uint64(size)
	return true
}

// admitCPU charges ingress CPU work, refusing when the emulation has run
// ahead of real time by more than the backlog bound (the paper's "NIC drops
// additional packets beyond this point").
func (c *core) admitCPU(e *Emulator, now vtime.Time, d vtime.Duration) bool {
	if d <= 0 {
		return true
	}
	start := now
	if c.cpuBusyUntil > start {
		start = c.cpuBusyUntil
	}
	if start.Sub(now) > e.prof.cpuBacklog() {
		return false
	}
	c.cpuBusyUntil = start.Add(d)
	c.CPUWork += d
	return true
}

// forceCPU charges mandatory emulation work (it runs at the highest
// priority and is never shed; overload manifests as ingress drops instead).
func (c *core) forceCPU(e *Emulator, now vtime.Time, d vtime.Duration) {
	if d <= 0 {
		return
	}
	start := now
	if c.cpuBusyUntil > start {
		start = c.cpuBusyUntil
	}
	c.cpuBusyUntil = start.Add(d)
	c.CPUWork += d
}

// CPUUtilization reports core i's cumulative CPU busy fraction since t0.
func (e *Emulator) CPUUtilization(i int, since vtime.Time) float64 {
	elapsed := e.sched.Now().Sub(since)
	if elapsed <= 0 {
		return 0
	}
	return float64(e.cores[i].CPUWork) / float64(elapsed)
}
