package emucore

// Tests for the batch-first data path pieces that live in emucore: the
// packet descriptor free list and BatchApply's deferred core re-arming.

import (
	"reflect"
	"testing"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

func TestPacketDescriptorsRecycle(t *testing.T) {
	g := topology.Line(1, attrs(8, 5))
	e, sched, _ := fixture(t, g, 1, IdealProfile())
	if !e.Inject(0, 1, 1000, nil) {
		t.Fatal("inject refused")
	}
	sched.Run()
	if e.Delivered != 1 {
		t.Fatalf("delivered %d", e.Delivered)
	}
	// The delivered descriptor is back on the free list...
	if e.pool.Len() != 1 {
		t.Fatalf("free list holds %d descriptors, want 1", e.pool.Len())
	}
	// ...and the next injection reuses it instead of allocating.
	if !e.Inject(0, 1, 1000, nil) {
		t.Fatal("second inject refused")
	}
	if e.pool.Len() != 0 {
		t.Fatalf("free list holds %d descriptors after reuse, want 0", e.pool.Len())
	}
	sched.Run()
	if e.Delivered != 2 || e.pool.Len() != 1 {
		t.Fatalf("delivered %d, free list %d", e.Delivered, e.pool.Len())
	}
}

func TestPacketDescriptorsRecycleOnDrop(t *testing.T) {
	g := topology.Line(1, topology.LinkAttrs{BandwidthBps: 8e6, LatencySec: 5e-3, LossRate: 1, QueuePkts: 10})
	e, sched, _ := fixture(t, g, 1, IdealProfile())
	if !e.Inject(0, 1, 1000, nil) {
		t.Fatal("inject refused (virtual drops are invisible to senders)")
	}
	sched.Run()
	if e.Delivered != 0 {
		t.Fatalf("delivered %d through a loss-1 pipe", e.Delivered)
	}
	if e.pool.Len() != 1 {
		t.Fatalf("dropped descriptor not recycled: free list %d", e.pool.Len())
	}
}

// BatchApply must be behavior-transparent: injecting a burst inside one
// batch produces exactly the per-VN delivery times of injecting it plainly.
func TestBatchApplyTransparent(t *testing.T) {
	run := func(batch bool) (map[int][]vtime.Time, Totals) {
		g := topology.Ring(4, 2, attrs(100, 5), attrs(10, 1))
		e, sched, got := fixture(t, g, 1, IdealProfile())
		inject := func() {
			for v := 0; v < 8; v++ {
				e.Inject(pipes.VN(v), pipes.VN((v+4)%8), 500, nil)
			}
		}
		if batch {
			e.BatchApply(inject)
		} else {
			inject()
		}
		sched.Run()
		out := map[int][]vtime.Time{}
		for vn, ts := range got {
			out[int(vn)] = ts
		}
		return out, e.Totals()
	}
	plainD, plainT := run(false)
	batchD, batchT := run(true)
	if plainT != batchT {
		t.Fatalf("totals diverge: %+v vs %+v", plainT, batchT)
	}
	if !reflect.DeepEqual(plainD, batchD) {
		t.Fatalf("delivery times diverge:\nplain %v\nbatch %v", plainD, batchD)
	}
	if plainT.Delivered == 0 {
		t.Fatal("no traffic delivered — test is vacuous")
	}
}

func TestRegisterVNGrowsDense(t *testing.T) {
	g := topology.Line(1, attrs(8, 5))
	e, _, _ := fixture(t, g, 1, IdealProfile())
	// Registering past the bound VN population must not panic, and the
	// callback must land at the right index.
	called := false
	e.RegisterVN(40, func(*pipes.Packet) { called = true })
	if len(e.deliver) < 41 || e.deliver[40] == nil {
		t.Fatalf("deliver slice not grown: len %d", len(e.deliver))
	}
	e.deliver[40](nil)
	if !called {
		t.Fatal("callback not installed")
	}
}
