package emucore

import (
	"testing"
	"testing/quick"

	"modelnet/internal/assign"
	"modelnet/internal/bind"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

func attrs(mbps, ms float64) topology.LinkAttrs {
	return topology.LinkAttrs{BandwidthBps: mbps * 1e6, LatencySec: ms * 1e-3, QueuePkts: 100}
}

// fixture builds an emulator over g with nCores, returning it plus a
// per-VN delivery recorder.
func fixture(t *testing.T, g *topology.Graph, nCores int, prof Profile) (*Emulator, *vtime.Scheduler, map[pipes.VN][]vtime.Time) {
	t.Helper()
	sched := vtime.NewScheduler()
	b, err := bind.Bind(g, bind.Options{Cores: nCores})
	if err != nil {
		t.Fatal(err)
	}
	var pod *bind.POD
	if nCores > 1 {
		a, err := assign.KClusters(g, nCores, 1)
		if err != nil {
			t.Fatal(err)
		}
		pod = a.POD()
	}
	e, err := New(sched, g, b, pod, prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[pipes.VN][]vtime.Time{}
	for v := 0; v < b.NumVNs(); v++ {
		v := pipes.VN(v)
		e.RegisterVN(v, func(pkt *pipes.Packet) {
			got[v] = append(got[v], sched.Now())
		})
	}
	return e, sched, got
}

func TestSinglePacketIdealTiming(t *testing.T) {
	// Two hops: each 8 Mb/s, 5 ms. 1000 B packet: 1 ms tx per hop.
	// End-to-end ideal = 2*(1+5) = 12 ms.
	g := topology.Line(1, attrs(8, 5)) // client-r0-client: 2 pipes
	e, sched, got := fixture(t, g, 1, IdealProfile())
	if !e.Inject(0, 1, 1000, nil) {
		t.Fatal("inject refused")
	}
	sched.Run()
	if len(got[1]) != 1 {
		t.Fatalf("delivered %d packets", len(got[1]))
	}
	want := vtime.Time(12 * vtime.Millisecond)
	if got[1][0] != want {
		t.Fatalf("delivery at %v, want %v", got[1][0], want)
	}
	if e.Accuracy.MaxLag != 0 {
		t.Errorf("ideal mode lag %v", e.Accuracy.MaxLag)
	}
}

func TestTickQuantization(t *testing.T) {
	// With a 100 µs tick, delivery lands on a tick boundary at or after
	// the ideal time, within hops*tick.
	g := topology.Line(1, attrs(8, 5))
	prof := DefaultProfile()
	prof.CPU = CPUCosts{} // isolate quantization
	prof.NICBps = 0
	e, sched, got := fixture(t, g, 1, prof)
	e.Inject(0, 1, 1000, nil)
	sched.Run()
	if len(got[1]) != 1 {
		t.Fatalf("delivered %d", len(got[1]))
	}
	at := got[1][0]
	ideal := vtime.Time(12 * vtime.Millisecond)
	if at < ideal {
		t.Fatalf("delivered before ideal: %v < %v", at, ideal)
	}
	if at.Sub(ideal) > 2*DefaultTick {
		t.Fatalf("lag %v exceeds 2 ticks", at.Sub(ideal))
	}
	if at%vtime.Time(DefaultTick) != 0 {
		t.Errorf("delivery %v not on a tick boundary", at)
	}
}

func TestAccuracyBoundPerHop(t *testing.T) {
	// §3.1: each packet-hop accurate to within the timer granularity;
	// worst case error over h hops is h ticks without debt handling.
	const hops = 10
	g := topology.Line(hops, attrs(100, 1))
	prof := DefaultProfile()
	prof.CPU = CPUCosts{}
	prof.NICBps = 0
	e, sched, _ := fixture(t, g, 1, prof)
	for i := 0; i < 200; i++ {
		i := i
		sched.At(vtime.Time(i)*vtime.Time(137*vtime.Microsecond), func() {
			e.Inject(0, 1, 1000, nil)
		})
	}
	sched.Run()
	if e.Accuracy.Count == 0 {
		t.Fatal("nothing delivered")
	}
	bound := vtime.Duration(hops+1) * DefaultTick
	if !e.Accuracy.WithinBound(bound) {
		t.Errorf("max lag %v exceeds %v", e.Accuracy.MaxLag, bound)
	}
}

func TestDebtHandlingTightensBound(t *testing.T) {
	// With packet-debt correction the end-to-end error collapses to one
	// tick regardless of hop count (§3.1's anticipated optimization).
	const hops = 10
	g := topology.Line(hops, attrs(100, 1))
	prof := DefaultProfile()
	prof.CPU = CPUCosts{}
	prof.NICBps = 0
	prof.DebtHandling = true
	e, sched, _ := fixture(t, g, 1, prof)
	for i := 0; i < 200; i++ {
		i := i
		sched.At(vtime.Time(i)*vtime.Time(137*vtime.Microsecond), func() {
			e.Inject(0, 1, 1000, nil)
		})
	}
	sched.Run()
	if e.Accuracy.Count == 0 {
		t.Fatal("nothing delivered")
	}
	if !e.Accuracy.WithinBound(DefaultTick) {
		t.Errorf("debt handling: max lag %v exceeds one tick", e.Accuracy.MaxLag)
	}
}

func TestCPUSaturationDropsPhysically(t *testing.T) {
	// Make the CPU absurdly slow and flood: ingress must be shed at the
	// NIC (physical drops), and what is delivered must still be on time.
	g := topology.Line(1, attrs(100, 1))
	prof := DefaultProfile()
	prof.CPU.PerPacket = 500 * vtime.Microsecond
	prof.NICBps = 0
	e, sched, _ := fixture(t, g, 1, prof)
	for i := 0; i < 1000; i++ {
		i := i
		sched.At(vtime.Time(i)*vtime.Time(10*vtime.Microsecond), func() {
			e.Inject(0, 1, 1000, nil)
		})
	}
	sched.Run()
	tot := e.Totals()
	if tot.PhysDrops == 0 {
		t.Fatal("overloaded core shed nothing")
	}
	if tot.Delivered == 0 {
		t.Fatal("overloaded core delivered nothing")
	}
	// Accuracy preserved for what got through: drops, not lateness.
	if !e.Accuracy.WithinBound(3 * DefaultTick) {
		t.Errorf("overload degraded accuracy: max lag %v", e.Accuracy.MaxLag)
	}
}

func TestNICSaturationDropsPhysically(t *testing.T) {
	g := topology.Line(1, attrs(1000, 1))
	prof := DefaultProfile()
	prof.CPU = CPUCosts{}
	prof.NICBps = 10e6 // tiny NIC: 10 Mb/s
	e, sched, _ := fixture(t, g, 1, prof)
	for i := 0; i < 2000; i++ {
		i := i
		sched.At(vtime.Time(i)*vtime.Time(100*vtime.Microsecond), func() {
			e.Inject(0, 1, 1500, nil) // 12 Mb/s offered > 10 Mb/s NIC
		})
	}
	sched.Run()
	if e.CoreStats(0).PhysDropsNIC == 0 {
		t.Error("NIC overload produced no physical drops")
	}
	if e.Delivered == 0 {
		t.Error("nothing delivered under NIC overload")
	}
}

func TestConservation(t *testing.T) {
	g := topology.Ring(5, 2, attrs(2, 5), attrs(1, 1))
	prof := DefaultProfile()
	e, sched, _ := fixture(t, g, 1, prof)
	n := 0
	for i := 0; i < 500; i++ {
		i := i
		sched.At(vtime.Time(i)*vtime.Time(200*vtime.Microsecond), func() {
			src := pipes.VN(i % 10)
			dst := pipes.VN((i + 3) % 10)
			if e.Inject(src, dst, 1500, nil) {
				n++
			}
		})
	}
	sched.Run()
	tot := e.Totals()
	if tot.InFlight != 0 {
		t.Fatalf("in flight after drain: %d", tot.InFlight)
	}
	// Injected = delivered + virtual drops + tx-side physical drops (rx
	// drops happen before Injected is counted).
	txDrops := uint64(0)
	for i := 0; i < e.Cores(); i++ {
		cs := e.CoreStats(i)
		txDrops += cs.PhysDropsTx
	}
	if tot.Injected != tot.Delivered+tot.VirtualDrops+txDrops {
		t.Errorf("conservation: injected %d != delivered %d + virtual %d + txdrops %d",
			tot.Injected, tot.Delivered, tot.VirtualDrops, txDrops)
	}
}

func TestNoRoute(t *testing.T) {
	g := topology.Pairs(2, 1, attrs(10, 1)) // two disconnected pairs
	sched := vtime.NewScheduler()
	// Build binding with a cache table: unreachable pairs return !ok.
	b, err := bind.Bind(g, bind.Options{RouteCache: 16})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sched, g, b, nil, IdealProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// VN 0 and VN 1 are the first pair's endpoints; VN 2,3 the second's.
	if e.Inject(0, 2, 1000, nil) {
		t.Error("inject across disconnected pairs accepted")
	}
	if e.NoRoute != 1 {
		t.Errorf("NoRoute = %d", e.NoRoute)
	}
}

func TestSelfDelivery(t *testing.T) {
	g := topology.Star(3, attrs(10, 1))
	e, sched, got := fixture(t, g, 1, IdealProfile())
	e.Inject(2, 2, 500, nil)
	sched.Run()
	if len(got[2]) != 1 || got[2][0] != 0 {
		t.Errorf("self delivery: %v", got[2])
	}
}

func TestMultiCoreTunneling(t *testing.T) {
	g := topology.Star(8, attrs(10, 5))
	prof := DefaultProfile()
	e, sched, got := fixture(t, g, 4, prof)
	for i := 0; i < 8; i++ {
		i := i
		sched.At(vtime.Time(i)*vtime.Time(vtime.Millisecond), func() {
			e.Inject(pipes.VN(i), pipes.VN((i+4)%8), 1500, nil)
		})
	}
	sched.Run()
	delivered := 0
	for _, d := range got {
		delivered += len(d)
	}
	if delivered != 8 {
		t.Fatalf("delivered %d of 8", delivered)
	}
	tunnels := uint64(0)
	for i := 0; i < 4; i++ {
		tunnels += e.CoreStats(i).TunnelsOut
	}
	if tunnels == 0 {
		t.Error("4-core star produced no tunnels")
	}
}

func TestPayloadCachingReducesTunnelBytes(t *testing.T) {
	run := func(caching bool) uint64 {
		g := topology.Star(8, attrs(10, 5))
		prof := DefaultProfile()
		prof.PayloadCaching = caching
		e, sched, _ := fixture(t, g, 4, prof)
		for i := 0; i < 200; i++ {
			i := i
			sched.At(vtime.Time(i)*vtime.Time(vtime.Millisecond), func() {
				e.Inject(pipes.VN(i%8), pipes.VN((i+4)%8), 1500, nil)
			})
		}
		sched.Run()
		var rx uint64
		for i := 0; i < 4; i++ {
			rx += e.CoreStats(i).RxBytes
		}
		return rx
	}
	full := run(false)
	cached := run(true)
	if cached >= full {
		t.Errorf("payload caching rx bytes %d ≥ full tunneling %d", cached, full)
	}
}

func TestDynamicPipeParams(t *testing.T) {
	// Double a pipe's latency mid-run; later packets arrive later.
	g := topology.Line(1, attrs(8, 5))
	e, sched, got := fixture(t, g, 1, IdealProfile())
	e.Inject(0, 1, 1000, nil)
	sched.At(vtime.Time(20*vtime.Millisecond), func() {
		for i := 0; i < e.NumPipes(); i++ {
			p := e.Pipe(pipes.ID(i))
			params := p.Params()
			params.Latency *= 2
			e.SetPipeParams(pipes.ID(i), params)
		}
		e.Inject(0, 1, 1000, nil)
	})
	sched.Run()
	if len(got[1]) != 2 {
		t.Fatalf("delivered %d", len(got[1]))
	}
	d1 := got[1][0]
	d2 := got[1][1].Sub(vtime.Time(20 * vtime.Millisecond))
	if vtime.Duration(d1) >= d2 {
		t.Errorf("second packet (%v) not slower than first (%v)", d2, d1)
	}
}

// Property: in ideal mode, delivery time for a lone packet equals the sum
// over route pipes of (size*8/bw + latency), for random topologies/pairs.
func TestIdealTimingProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		g := topology.Ring(4+int(seed%4), 2, attrs(20, 5), attrs(2, 1))
		sched := vtime.NewScheduler()
		b, err := bind.Bind(g, bind.Options{})
		if err != nil {
			return false
		}
		e, err := New(sched, g, b, nil, IdealProfile(), seed)
		if err != nil {
			return false
		}
		src := pipes.VN(int(seed) % b.NumVNs())
		dst := pipes.VN(int(seed+3) % b.NumVNs())
		if src == dst {
			return true
		}
		route, ok := b.Table.Lookup(src, dst)
		if !ok {
			return false
		}
		var want vtime.Duration
		const size = 777
		for _, pid := range route {
			l := g.Links[pid]
			want += vtime.DurationOf(float64(size*8)/l.Attr.BandwidthBps + l.Attr.LatencySec)
		}
		var at vtime.Time
		e.RegisterVN(dst, func(*pipes.Packet) { at = sched.Now() })
		e.Inject(src, dst, size, nil)
		sched.Run()
		diff := at.Sub(vtime.Time(want))
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // ns rounding
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCPUUtilization(t *testing.T) {
	g := topology.Line(1, attrs(100, 1))
	prof := DefaultProfile()
	e, sched, _ := fixture(t, g, 1, prof)
	for i := 0; i < 100; i++ {
		i := i
		sched.At(vtime.Time(i)*vtime.Time(vtime.Millisecond), func() {
			e.Inject(0, 1, 1500, nil)
		})
	}
	sched.Run()
	u := e.CPUUtilization(0, 0)
	if u <= 0 || u > 1.0 {
		t.Errorf("utilization = %v", u)
	}
}
