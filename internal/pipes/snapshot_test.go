package pipes

import (
	"math/rand"
	"reflect"
	"testing"

	"modelnet/internal/vtime"
)

// driveRandomly offers a random packet mix to the pipe over [start, end),
// interleaving dequeues, and returns a log of every observable outcome.
// The traffic is a pure function of rng, so two pipes driven with
// identically-seeded rngs see identical offered loads.
func driveRandomly(p *Pipe, rng *rand.Rand, start, end vtime.Time, log *[]string) {
	for now := start; now < end; now = now.Add(vtime.Duration(rng.Intn(3)+1) * vtime.Millisecond) {
		if rng.Intn(4) == 0 {
			n := p.DequeueReady(now, func(pk *Packet, exit vtime.Time) {
				*log = append(*log, "out "+exit.String())
			})
			_ = n
			continue
		}
		pk := &Packet{Seq: uint64(now), Size: rng.Intn(1400) + 100}
		reason, exit := p.Enqueue(pk, now)
		if reason == DropNone {
			*log = append(*log, "in "+exit.String())
		} else {
			*log = append(*log, "drop "+reason.String())
		}
	}
	p.DequeueReady(end, func(pk *Packet, exit vtime.Time) {
		*log = append(*log, "out "+exit.String())
	})
}

// TestPipeSnapshotRestoreEquivalence is the satellite property test: drive
// an occupied, lossy, RED-managed pipe partway; snapshot it; restore onto a
// fresh pipe; continue both under identical offered load; demand identical
// outcomes — including random loss decisions (draw position), RED state,
// and the FIFO lastExit clamp.
func TestPipeSnapshotRestoreEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		params := Params{
			BandwidthBps: 8e6,
			Latency:      5 * vtime.Millisecond,
			LossRate:     0.2,
			QueuePkts:    12,
		}
		if trial%2 == 1 {
			params.RED = DefaultRED(12)
		}
		seed := int64(1000 + trial)
		ref := New(ID(trial), params, seed)

		refTraffic := rand.New(rand.NewSource(int64(trial) * 7))
		var refLog []string
		mid := vtime.Time(40 * vtime.Millisecond)
		end := vtime.Time(120 * vtime.Millisecond)
		driveRandomly(ref, refTraffic, 0, mid, &refLog)

		st := ref.Snapshot()
		if len(st.Entries) == 0 && ref.Len() > 0 {
			t.Fatalf("trial %d: snapshot lost in-flight entries", trial)
		}

		restored := New(ID(trial), params, seed)
		if err := restored.Restore(st); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}

		// Same downstream traffic for both: reseed a traffic rng and replay
		// the pre-snapshot portion into a sink to advance it identically.
		gotTraffic := rand.New(rand.NewSource(int64(trial) * 7))
		var sink []string
		sinkPipe := New(ID(trial), params, seed)
		driveRandomly(sinkPipe, gotTraffic, 0, mid, &sink)
		if !reflect.DeepEqual(sink, refLog) {
			t.Fatalf("trial %d: traffic replay not deterministic", trial)
		}

		preLen := len(refLog)
		var gotLog []string
		driveRandomly(ref, refTraffic, mid, end, &refLog)
		driveRandomly(restored, gotTraffic, mid, end, &gotLog)
		if !reflect.DeepEqual(refLog[preLen:], gotLog) {
			t.Fatalf("trial %d: outcomes diverge after restore:\nref: %v\ngot: %v",
				trial, refLog[preLen:], gotLog)
		}
		if ref.Accepted != restored.Accepted || ref.Delivered != restored.Delivered ||
			ref.Drops != restored.Drops || ref.BytesOut != restored.BytesOut ||
			ref.lastExit != restored.lastExit || ref.draws != restored.draws {
			t.Fatalf("trial %d: counters diverge: %+v vs %+v", trial, ref, restored)
		}
	}
}

// TestPipeSnapshotLastExitClamp pins that the FIFO delay-line clamp state
// survives restore: a latency cut right after restore must still queue the
// new packet behind the old lastExit, exactly as on the original pipe.
func TestPipeSnapshotLastExitClamp(t *testing.T) {
	params := mkParams(100, 50*vtime.Millisecond, 10)
	ref := New(1, params, 9)
	ref.Enqueue(pkt(1000), 0) // exits ~50ms
	st := ref.Snapshot()

	restored := New(1, params, 9)
	if err := restored.Restore(st); err != nil {
		t.Fatal(err)
	}
	cut := params
	cut.Latency = vtime.Millisecond
	for _, p := range []*Pipe{ref, restored} {
		p.SetParams(cut)
		_, exit := p.Enqueue(pkt(1000), vtime.Time(2*vtime.Millisecond))
		if exit < st.LastExit {
			t.Fatalf("clamp lost: exit %v < lastExit %v", exit, st.LastExit)
		}
	}
	re, _ := ref.PeekExit()
	ge, _ := restored.PeekExit()
	if re != ge {
		t.Fatalf("head exits diverge: %v vs %v", re, ge)
	}
}

func TestPipeRestoreRejectsDirtyOrBadState(t *testing.T) {
	params := mkParams(100, vtime.Millisecond, 10)
	dirty := New(1, params, 3)
	dirty.Enqueue(pkt(100), 0)
	if err := dirty.Restore(State{}); err == nil {
		t.Fatal("restore on a dirty pipe should fail")
	}
	bad := State{Entries: []EntryState{
		{Pkt: pkt(10), Exit: 20},
		{Pkt: pkt(10), Exit: 10}, // not FIFO
	}}
	if err := New(1, params, 3).Restore(bad); err == nil {
		t.Fatal("non-FIFO entries should fail")
	}
	if err := New(1, params, 3).Restore(State{Entries: []EntryState{{Exit: 5}}}); err == nil {
		t.Fatal("nil packet should fail")
	}
}
