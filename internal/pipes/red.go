package pipes

import (
	"math"

	"modelnet/internal/vtime"
)

// REDParams configures Random Early Detection (Floyd & Jacobson 1993) for a
// pipe's queue. Each pipe is FIFO by default; RED is the alternative
// queueing discipline the paper mentions in §2.2.
type REDParams struct {
	MinThresh float64 // average queue length below which no packet drops
	MaxThresh float64 // average queue length above which all packets drop
	MaxP      float64 // drop probability at MaxThresh
	Weight    float64 // EWMA weight for the average queue size (typ. 0.002)
}

// DefaultRED returns conventional RED parameters scaled to a queue capacity.
func DefaultRED(queuePkts int) *REDParams {
	if queuePkts <= 0 {
		queuePkts = DefaultQueuePkts
	}
	return &REDParams{
		MinThresh: float64(queuePkts) * 0.25,
		MaxThresh: float64(queuePkts) * 0.75,
		MaxP:      0.1,
		Weight:    0.002,
	}
}

// redState is the per-pipe RED bookkeeping.
type redState struct {
	avg       float64    // EWMA of queue length
	count     int        // packets since last drop while avg in [min,max)
	idleSince vtime.Time // when the queue went empty, for idle decay
	idle      bool
}

func (r *redState) init() {
	r.avg = 0
	r.count = -1
	r.idle = true
	r.idleSince = 0
}

// markIdle records that the queue drained empty at time now, so the average
// decays over the idle period before the next arrival.
func (r *redState) markIdle(now vtime.Time) {
	if !r.idle {
		r.idle = true
		r.idleSince = now
	}
}

// shouldDrop runs the gentle-less classic RED algorithm on one arrival.
// roll supplies uniform draws (the pipe's counted generator).
func (r *redState) shouldDrop(p *REDParams, qlen int, now vtime.Time, roll func() float64) bool {
	w := p.Weight
	if w <= 0 {
		w = 0.002
	}
	if qlen == 0 {
		if !r.idle {
			r.idle = true
			r.idleSince = now
		}
		// Decay the average during idle periods: pretend ~1 small packet
		// per 100 µs could have been transmitted.
		idleTicks := float64(now.Sub(r.idleSince)) / float64(100*vtime.Microsecond)
		if idleTicks > 0 {
			r.avg *= math.Pow(1-w, idleTicks)
		}
		r.idleSince = now
	} else {
		r.idle = false
		r.avg = (1-w)*r.avg + w*float64(qlen)
	}

	switch {
	case r.avg < p.MinThresh:
		r.count = -1
		return false
	case r.avg >= p.MaxThresh:
		r.count = 0
		return true
	default:
		r.count++
		pb := p.MaxP * (r.avg - p.MinThresh) / (p.MaxThresh - p.MinThresh)
		pa := pb / math.Max(1-float64(r.count)*pb, 1e-9)
		if roll() < pa {
			r.count = 0
			return true
		}
		return false
	}
}
