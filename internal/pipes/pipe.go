package pipes

import (
	"fmt"
	"math"
	"math/rand"

	"modelnet/internal/vtime"
)

// DefaultQueuePkts is the queue capacity used when a link specifies none;
// it matches dummynet's default of 50 slots.
const DefaultQueuePkts = 50

// Params are the emulation parameters of one pipe. They may be changed
// while the emulation runs (dynamic network characteristics, §4.3);
// internal/dynamics schedules such changes as virtual-time events.
//
// A BandwidthBps that is zero, negative, +Inf, or NaN means "infinite
// bandwidth": transmission takes no time and only Latency delays the packet.
// This is the only sane reading of the zero value and makes trace gaps and
// hand-built Params safe by construction (a division by zero would otherwise
// produce +Inf/NaN exit times that poison the pipe heap).
type Params struct {
	BandwidthBps float64        // link rate, bits per second (<=0/Inf/NaN = infinite)
	Latency      vtime.Duration // one-way propagation delay
	LossRate     float64        // [0,1) random drop probability
	QueuePkts    int            // transmission queue capacity in packets
	RED          *REDParams     // nil = drop-tail FIFO
	// Down administratively fails the link: every new packet is dropped
	// with DropLinkDown while in-flight packets drain on their original
	// schedule — the paper's link-failure semantics, driven by
	// internal/dynamics.
	Down bool
}

func (p Params) queueCap() int {
	if p.QueuePkts <= 0 {
		return DefaultQueuePkts
	}
	return p.QueuePkts
}

// entry is one packet inside the pipe: waiting to transmit until txDone,
// then on the delay line until exit.
type entry struct {
	pkt    *Packet
	txDone vtime.Time
	exit   vtime.Time
}

// Pipe is one emulated link. Not safe for concurrent use; all access happens
// on the single emulation event loop.
type Pipe struct {
	id     ID
	params Params

	q      []entry // FIFO: [txHead:) still transmitting-or-waiting, earlier are on the delay line
	head   int     // index of first live entry in q
	txHead int     // index of first entry with txDone > now (lazily advanced)

	lastTxDone vtime.Time // when the transmitter becomes free
	lastExit   vtime.Time // latest exit handed out; keeps the delay line FIFO
	seed       int64
	rng        *rand.Rand // built on first draw: ~5 KB of generator state
	draws      uint64     // Float64 draws taken; positions the rng in a snapshot
	red        redState

	// Stats.
	Accepted  uint64
	Drops     [numDropReasons]uint64 // indexed by DropReason
	BytesIn   uint64
	BytesOut  uint64
	Delivered uint64
}

// New returns a pipe with the given identity and parameters. seed
// determinizes the pipe's random loss and RED decisions. The generator
// itself is built on first draw: its state dwarfs the rest of the pipe, and
// at 10⁵-link scale most pipes never make a random decision.
func New(id ID, params Params, seed int64) *Pipe {
	p := &Pipe{id: id, params: params, seed: seed}
	p.red.init()
	return p
}

// random returns the pipe's deterministic generator, building it on first
// use. The draw sequence is a function of (seed, id) alone, so a pipe that
// turns lossy mid-run (dynamics) sees the same sequence it would have seen
// with an eager generator.
func (p *Pipe) random() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.seed ^ int64(p.id)*0x1e3779b97f4a7c15))
	}
	return p.rng
}

// roll takes one draw from the pipe's generator. All random decisions (loss,
// RED) go through roll so the draw count positions the generator exactly:
// a restored pipe replays draws discarded draws and continues the sequence.
func (p *Pipe) roll() float64 {
	p.draws++
	return p.random().Float64()
}

// ID returns the pipe's identity.
func (p *Pipe) ID() ID { return p.id }

// Params returns the current parameters.
func (p *Pipe) Params() Params { return p.params }

// SetParams installs new parameters. In-flight packets keep the schedule
// they were assigned on entry; subsequent packets see the new values. This
// is the mechanism behind synthetic cross traffic and fault injection.
func (p *Pipe) SetParams(params Params) { p.params = params }

// Len reports the number of packets inside the pipe (queue + delay line).
func (p *Pipe) Len() int { return len(p.q) - p.head }

// QueueLen reports packets still waiting for (or in) transmission at time
// now — the population the drop policies act on.
func (p *Pipe) QueueLen(now vtime.Time) int {
	p.advanceTx(now)
	return len(p.q) - p.txHead
}

func (p *Pipe) advanceTx(now vtime.Time) {
	for p.txHead < len(p.q) && p.q[p.txHead].txDone <= now {
		p.txHead++
	}
}

// Enqueue offers a packet to the pipe at time now. It returns DropNone and
// the packet's exit time on acceptance, or the drop reason. Drops here are
// *emulated* ("virtual") drops: the target network would have dropped the
// packet too.
func (p *Pipe) Enqueue(pkt *Packet, now vtime.Time) (DropReason, vtime.Time) {
	// A failed link blackholes everything offered to it, before any other
	// policy: no medium, no loss process, no queue.
	if p.params.Down {
		p.Drops[DropLinkDown]++
		return DropLinkDown, 0
	}

	// Random loss first: it models lossy media, independent of queueing.
	if p.params.LossRate > 0 && p.roll() < p.params.LossRate {
		p.Drops[DropRandomLoss]++
		return DropRandomLoss, 0
	}

	qlen := p.QueueLen(now)
	if p.params.RED != nil {
		if p.red.shouldDrop(p.params.RED, qlen, now, p.roll) {
			p.Drops[DropRED]++
			return DropRED, 0
		}
	}
	if qlen >= p.params.queueCap() {
		p.Drops[DropBacklog]++
		return DropBacklog, 0
	}

	// Time to drain every earlier queued byte plus this packet at the
	// pipe's bandwidth (§2.2), then ride the delay line.
	txStart := now
	if p.lastTxDone > txStart {
		txStart = p.lastTxDone
	}
	txTime := vtime.Duration(0)
	if bw := p.params.BandwidthBps; bw > 0 && !math.IsInf(bw, 1) {
		txTime = vtime.Duration(float64(pkt.Size*8) / bw * float64(vtime.Second))
		// Guard the conversion, not just the sign: a NaN bandwidth (or a
		// float overflow) yields a NaN/huge txTime whose comparisons are
		// all false, which would corrupt lastTxDone for every later packet.
		if !(txTime > 0) || !(txTime < vtime.Duration(math.MaxInt64)) {
			txTime = 0
		}
	}
	txDone := txStart.Add(txTime)
	exit := txDone.Add(p.params.Latency)
	// The delay line is FIFO, as in dummynet: when a latency cut (dynamics)
	// would let this packet leave before an earlier one, it instead exits
	// right behind it. Without this, packets exit out of FIFO order and
	// execution modes that forward each packet at its own exit time diverge
	// from the sequential head-of-line dequeuer.
	if exit < p.lastExit {
		exit = p.lastExit
	}
	p.lastExit = exit
	p.lastTxDone = txDone
	p.q = append(p.q, entry{pkt: pkt, txDone: txDone, exit: exit})
	p.Accepted++
	p.BytesIn += uint64(pkt.Size)
	return DropNone, exit
}

// NextDeadline returns the exit time of the pipe's earliest packet, or
// vtime.Forever when the pipe is empty. This is the key the core's pipe
// heap sorts on.
func (p *Pipe) NextDeadline() vtime.Time {
	if p.head >= len(p.q) {
		return vtime.Forever
	}
	return p.q[p.head].exit
}

// DequeueReady pops every packet whose exit time is ≤ now, invoking deliver
// for each in FIFO order with the packet's exact (unquantized) exit time.
// It returns the number delivered.
func (p *Pipe) DequeueReady(now vtime.Time, deliver func(*Packet, vtime.Time)) int {
	n := 0
	for p.head < len(p.q) && p.q[p.head].exit <= now {
		e := p.q[p.head]
		p.q[p.head] = entry{} // release reference
		p.head++
		n++
		p.Delivered++
		p.BytesOut += uint64(e.pkt.Size)
		deliver(e.pkt, e.exit)
	}
	if p.head == len(p.q) {
		p.red.markIdle(now)
	}
	p.compact()
	return n
}

// ScanEntries visits every packet inside the pipe in FIFO order with its
// scheduled exit time. The visitor must not mutate the pipe. O(Len).
func (p *Pipe) ScanEntries(visit func(pkt *Packet, exit vtime.Time)) {
	for i := p.head; i < len(p.q); i++ {
		visit(p.q[i].pkt, p.q[i].exit)
	}
}

// PeekExit reports the scheduled exit time of the head packet without
// removing it; ok is false when the pipe is empty.
func (p *Pipe) PeekExit() (vtime.Time, bool) {
	if p.head >= len(p.q) {
		return 0, false
	}
	return p.q[p.head].exit, true
}

func (p *Pipe) compact() {
	if p.head == len(p.q) {
		p.q = p.q[:0]
		p.head = 0
		p.txHead = 0
		return
	}
	// Reclaim space once the dead prefix dominates.
	if p.head > 64 && p.head*2 > len(p.q) {
		n := copy(p.q, p.q[p.head:])
		for i := n; i < len(p.q); i++ {
			p.q[i] = entry{}
		}
		p.q = p.q[:n]
		p.txHead -= p.head
		if p.txHead < 0 {
			p.txHead = 0
		}
		p.head = 0
	}
}

// TotalDrops reports the sum of all emulated drops.
func (p *Pipe) TotalDrops() uint64 {
	var n uint64
	for _, d := range p.Drops {
		n += d
	}
	return n
}

func (p *Pipe) String() string {
	return fmt.Sprintf("pipe %d: %.1f Mb/s, %v, loss %.4f, q%d (len %d)",
		p.id, p.params.BandwidthBps/1e6, p.params.Latency, p.params.LossRate,
		p.params.queueCap(), p.Len())
}
