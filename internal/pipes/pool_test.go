package pipes

import (
	"testing"

	"modelnet/internal/vtime"
)

func TestPacketPoolRecyclesZeroed(t *testing.T) {
	var pool PacketPool
	a := pool.Get()
	*a = Packet{
		Seq: 7, Size: 100, Src: 1, Dst: 2,
		Route: []ID{1, 2, 3}, Hop: 2,
		Injected: vtime.Time(5), Lag: vtime.Duration(3),
		Payload: "held",
	}
	pool.Put(a)
	if pool.Len() != 1 {
		t.Fatalf("pool len %d", pool.Len())
	}
	b := pool.Get()
	if b != a {
		t.Fatal("pool did not reuse the descriptor")
	}
	if b.Seq != 0 || b.Size != 0 || b.Src != 0 || b.Dst != 0 || b.Route != nil ||
		b.Hop != 0 || b.Injected != 0 || b.Lag != 0 || b.Payload != nil {
		t.Fatalf("recycled descriptor not zeroed: %+v", b)
	}
	if pool.Len() != 0 {
		t.Fatalf("pool len %d after Get", pool.Len())
	}
	// Get on an empty pool allocates.
	c := pool.Get()
	if c == a {
		t.Fatal("empty pool returned a live descriptor")
	}
	// Put(nil) is a no-op.
	pool.Put(nil)
	if pool.Len() != 0 {
		t.Fatal("nil Put entered the free list")
	}
}

func TestPacketPoolBounded(t *testing.T) {
	// A shard that receives more packets than it injects must not retain
	// every surplus descriptor: past the cap, Put drops to the GC.
	var pool PacketPool
	for i := 0; i < maxPoolFree+10; i++ {
		pool.Put(&Packet{})
	}
	if pool.Len() != maxPoolFree {
		t.Fatalf("free list grew to %d, cap is %d", pool.Len(), maxPoolFree)
	}
}
