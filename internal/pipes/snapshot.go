package pipes

// Pipe snapshot/restore: the full serializable state of one emulated link —
// parameters, every in-flight entry with its transmit/exit schedule, the
// FIFO delay-line clamps (lastTxDone/lastExit), the RED bookkeeping, the
// lazy generator's draw position, and the statistics counters. A restored
// pipe is behaviorally indistinguishable from one that was never
// snapshotted: federated checkpoints (internal/fednet) ride on this.

import (
	"fmt"

	"modelnet/internal/vtime"
)

// EntryState is one in-flight packet with its assigned schedule.
type EntryState struct {
	Pkt    *Packet
	TxDone vtime.Time
	Exit   vtime.Time
}

// REDState mirrors the unexported RED bookkeeping.
type REDState struct {
	Avg       float64
	Count     int
	IdleSince vtime.Time
	Idle      bool
}

// State is a pipe's complete serializable state. Packet payloads travel by
// reference; cross-process serialization converts them with the wire codec.
type State struct {
	Params     Params // RED deep-copied on restore
	Entries    []EntryState
	LastTxDone vtime.Time
	LastExit   vtime.Time
	Draws      uint64
	RED        REDState

	Accepted  uint64
	Drops     [numDropReasons]uint64
	BytesIn   uint64
	BytesOut  uint64
	Delivered uint64
}

// Snapshot captures the pipe's state. The returned entries alias the pipe's
// packets; callers that keep the snapshot past the next emulation event must
// copy them.
func (p *Pipe) Snapshot() State {
	st := State{
		Params:     p.params,
		LastTxDone: p.lastTxDone,
		LastExit:   p.lastExit,
		Draws:      p.draws,
		RED:        REDState{Avg: p.red.avg, Count: p.red.count, IdleSince: p.red.idleSince, Idle: p.red.idle},
		Accepted:   p.Accepted,
		Drops:      p.Drops,
		BytesIn:    p.BytesIn,
		BytesOut:   p.BytesOut,
		Delivered:  p.Delivered,
	}
	if p.params.RED != nil {
		red := *p.params.RED
		st.Params.RED = &red
	}
	if n := len(p.q) - p.head; n > 0 {
		st.Entries = make([]EntryState, 0, n)
		for i := p.head; i < len(p.q); i++ {
			e := p.q[i]
			st.Entries = append(st.Entries, EntryState{Pkt: e.pkt, TxDone: e.txDone, Exit: e.exit})
		}
	}
	return st
}

// Restore rebuilds a snapshotted pipe. The receiver must be freshly
// constructed with the same (id, seed) the snapshotted pipe had; the
// generator is repositioned by replaying the recorded number of draws, so
// loss and RED decisions continue the exact sequence the original would
// have produced.
func (p *Pipe) Restore(st State) error {
	if len(p.q) != 0 || p.Accepted != 0 || p.draws != 0 || p.Delivered != 0 {
		return fmt.Errorf("pipes: Restore needs a fresh pipe (id %d)", p.id)
	}
	p.params = st.Params
	if st.Params.RED != nil {
		red := *st.Params.RED
		p.params.RED = &red
	}
	if st.Draws > 0 {
		r := p.random()
		for i := uint64(0); i < st.Draws; i++ {
			r.Float64()
		}
		p.draws = st.Draws
	}
	p.lastTxDone = st.LastTxDone
	p.lastExit = st.LastExit
	p.red.avg = st.RED.Avg
	p.red.count = st.RED.Count
	p.red.idleSince = st.RED.IdleSince
	p.red.idle = st.RED.Idle
	p.Accepted = st.Accepted
	p.Drops = st.Drops
	p.BytesIn = st.BytesIn
	p.BytesOut = st.BytesOut
	p.Delivered = st.Delivered
	if len(st.Entries) > 0 {
		p.q = make([]entry, 0, len(st.Entries))
		prevExit := vtime.Time(0)
		for _, e := range st.Entries {
			if e.Pkt == nil {
				return fmt.Errorf("pipes: restore pipe %d: entry without packet", p.id)
			}
			if e.Exit < prevExit {
				return fmt.Errorf("pipes: restore pipe %d: exits not FIFO (%v after %v)", p.id, e.Exit, prevExit)
			}
			prevExit = e.Exit
			p.q = append(p.q, entry{pkt: e.Pkt, txDone: e.TxDone, exit: e.Exit})
		}
	}
	return nil
}
