package pipes

import "modelnet/internal/vtime"

// Heap is the pipe heap from §2.2: pipes ordered by earliest deadline,
// where a pipe's deadline is the exit time of the first packet in its
// queue. The core scheduler traverses it every clock tick.
//
// Pipes are tracked by position so a pipe whose deadline changes can be
// re-sifted in O(log n) without search.
type Heap struct {
	items []heapItem
	pos   map[ID]int
}

type heapItem struct {
	pipe     *Pipe
	deadline vtime.Time
}

// NewHeap returns an empty pipe heap.
func NewHeap() *Heap {
	return &Heap{pos: make(map[ID]int)}
}

// Len reports the number of pipes with a live deadline.
func (h *Heap) Len() int { return len(h.items) }

// Min returns the earliest deadline, or vtime.Forever if empty.
func (h *Heap) Min() vtime.Time {
	if len(h.items) == 0 {
		return vtime.Forever
	}
	return h.items[0].deadline
}

// Update records pipe's current deadline. A deadline of vtime.Forever
// removes the pipe from the heap; otherwise the pipe is inserted or moved.
func (h *Heap) Update(p *Pipe) {
	d := p.NextDeadline()
	i, tracked := h.pos[p.ID()]
	if d == vtime.Forever {
		if tracked {
			h.remove(i)
		}
		return
	}
	if !tracked {
		h.items = append(h.items, heapItem{p, d})
		i = len(h.items) - 1
		h.pos[p.ID()] = i
		h.up(i)
		return
	}
	old := h.items[i].deadline
	h.items[i].deadline = d
	if d < old {
		h.up(i)
	} else if d > old {
		h.down(i)
	}
}

// Scan visits every pipe with a live deadline, in unspecified order. The
// parallel runtime's adaptive horizon walks the occupied pipes this way at
// each barrier: the heap holds exactly the pipes holding packets, so the
// scan is O(occupied), not O(topology).
func (h *Heap) Scan(visit func(ID, vtime.Time)) {
	for _, it := range h.items {
		visit(it.pipe.ID(), it.deadline)
	}
}

// PopReady removes and returns every pipe whose deadline is ≤ now. Callers
// dequeue the ready packets and then Update the pipe to reinsert it with
// its new deadline, mirroring the paper's scheduler loop.
func (h *Heap) PopReady(now vtime.Time, visit func(*Pipe)) int {
	n := 0
	for len(h.items) > 0 && h.items[0].deadline <= now {
		p := h.items[0].pipe
		h.remove(0)
		n++
		visit(p)
	}
	return n
}

func (h *Heap) remove(i int) {
	last := len(h.items) - 1
	delete(h.pos, h.items[i].pipe.ID())
	if i != last {
		h.items[i] = h.items[last]
		h.pos[h.items[i].pipe.ID()] = i
	}
	h.items = h.items[:last]
	if i < len(h.items) {
		h.down(i)
		h.up(i)
	}
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].deadline <= h.items[i].deadline {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].deadline < h.items[small].deadline {
			small = l
		}
		if r < n && h.items[r].deadline < h.items[small].deadline {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].pipe.ID()] = i
	h.pos[h.items[j].pipe.ID()] = j
}
