package pipes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelnet/internal/vtime"
)

func mkParams(mbps float64, lat vtime.Duration, qcap int) Params {
	return Params{BandwidthBps: mbps * 1e6, Latency: lat, QueuePkts: qcap}
}

func pkt(size int) *Packet { return &Packet{Size: size} }

func TestPipeBasicTiming(t *testing.T) {
	// 8 Mb/s, 10 ms latency: a 1000-byte packet transmits in 1 ms,
	// exits at 11 ms.
	p := New(0, mkParams(8, 10*vtime.Millisecond, 10), 1)
	reason, exit := p.Enqueue(pkt(1000), 0)
	if reason != DropNone {
		t.Fatalf("dropped: %v", reason)
	}
	want := vtime.Time(11 * vtime.Millisecond)
	if exit != want {
		t.Fatalf("exit = %v, want %v", exit, want)
	}
	if d := p.NextDeadline(); d != want {
		t.Fatalf("deadline = %v, want %v", d, want)
	}
	n := p.DequeueReady(want, func(*Packet, vtime.Time) {})
	if n != 1 {
		t.Fatalf("delivered %d", n)
	}
	if p.NextDeadline() != vtime.Forever {
		t.Error("empty pipe deadline not Forever")
	}
}

func TestPipeSerialization(t *testing.T) {
	// Two back-to-back packets: second waits for the first's transmission
	// (but latency overlaps — that's the delay line).
	p := New(0, mkParams(8, 10*vtime.Millisecond, 10), 1)
	_, exit1 := p.Enqueue(pkt(1000), 0)
	_, exit2 := p.Enqueue(pkt(1000), 0)
	if exit1 != vtime.Time(11*vtime.Millisecond) {
		t.Errorf("exit1 = %v", exit1)
	}
	if exit2 != vtime.Time(12*vtime.Millisecond) {
		t.Errorf("exit2 = %v, want 12ms (serialized tx, pipelined latency)", exit2)
	}
}

func TestPipeIdleGap(t *testing.T) {
	p := New(0, mkParams(8, vtime.Duration(0), 10), 1)
	_, e1 := p.Enqueue(pkt(1000), 0)
	p.DequeueReady(e1, func(*Packet, vtime.Time) {})
	// After idle, transmission starts at arrival, not at lastTxDone.
	_, e2 := p.Enqueue(pkt(1000), vtime.Time(50*vtime.Millisecond))
	want := vtime.Time(51 * vtime.Millisecond)
	if e2 != want {
		t.Errorf("exit after idle = %v, want %v", e2, want)
	}
}

func TestPipeOverflow(t *testing.T) {
	// Queue cap 3. Saturate instantaneously: packets beyond cap drop.
	p := New(0, mkParams(1, 0, 3), 1)
	drops := 0
	for i := 0; i < 10; i++ {
		if r, _ := p.Enqueue(pkt(1500), 0); r == DropBacklog {
			drops++
		}
	}
	if drops != 7 {
		t.Errorf("drops = %d, want 7 (cap 3)", drops)
	}
	if p.Drops[DropBacklog] != 7 {
		t.Errorf("stat drops = %d", p.Drops[DropBacklog])
	}
}

func TestPipeQueueDrains(t *testing.T) {
	// After the transmission queue drains, new packets are accepted again.
	p := New(0, mkParams(12, 0, 2), 1) // 1500B = 1ms at 12Mb/s
	p.Enqueue(pkt(1500), 0)
	p.Enqueue(pkt(1500), 0)
	if r, _ := p.Enqueue(pkt(1500), 0); r != DropBacklog {
		t.Fatal("third packet at t=0 should overflow")
	}
	// At t=1ms the first tx is done; one slot frees.
	if r, _ := p.Enqueue(pkt(1500), vtime.Time(1*vtime.Millisecond)); r != DropNone {
		t.Fatal("packet after drain should be accepted")
	}
}

func TestPipeRandomLoss(t *testing.T) {
	params := mkParams(1000, 0, 1<<20)
	params.LossRate = 0.3
	p := New(0, params, 42)
	const n = 20000
	lost := 0
	for i := 0; i < n; i++ {
		if r, _ := p.Enqueue(pkt(100), 0); r == DropRandomLoss {
			lost++
		}
	}
	got := float64(lost) / n
	if got < 0.27 || got > 0.33 {
		t.Errorf("loss fraction %.3f, want ≈0.3", got)
	}
}

func TestPipeFIFOOrder(t *testing.T) {
	p := New(0, mkParams(100, vtime.Duration(5*vtime.Millisecond), 1000), 1)
	var sent []uint64
	for i := 0; i < 50; i++ {
		pk := pkt(100 + i*10)
		pk.Seq = uint64(i)
		sent = append(sent, pk.Seq)
		p.Enqueue(pk, vtime.Time(i))
	}
	var got []uint64
	p.DequeueReady(vtime.Forever-1, func(pk *Packet, _ vtime.Time) { got = append(got, pk.Seq) })
	if len(got) != len(sent) {
		t.Fatalf("delivered %d of %d", len(got), len(sent))
	}
	for i := range got {
		if got[i] != sent[i] {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestSetParamsAffectsNewPackets(t *testing.T) {
	p := New(0, mkParams(8, 0, 10), 1)
	_, e1 := p.Enqueue(pkt(1000), 0) // 1ms at 8Mb/s
	p.SetParams(mkParams(4, 0, 10))
	_, e2 := p.Enqueue(pkt(1000), 0) // 2ms at 4Mb/s, queued behind first
	if e1 != vtime.Time(1*vtime.Millisecond) {
		t.Errorf("e1 = %v", e1)
	}
	if e2 != vtime.Time(3*vtime.Millisecond) {
		t.Errorf("e2 = %v, want 3ms", e2)
	}
}

// Zero, negative, NaN, and +Inf bandwidth all mean "infinite bandwidth":
// transmission is instantaneous and only latency delays the packet. The
// naive division would yield +Inf or NaN exit times; NaN in particular
// escapes a plain `txTime < 0` clamp because NaN comparisons are false.
func TestPipeDegenerateBandwidth(t *testing.T) {
	lat := 10 * vtime.Millisecond
	for _, bw := range []float64{0, -5e6, math.NaN(), math.Inf(1)} {
		p := New(0, Params{BandwidthBps: bw, Latency: lat, QueuePkts: 10}, 1)
		r, exit := p.Enqueue(pkt(1500), vtime.Time(vtime.Millisecond))
		if r != DropNone {
			t.Fatalf("bw=%v: dropped: %v", bw, r)
		}
		want := vtime.Time(11 * vtime.Millisecond) // arrival + latency only
		if exit != want {
			t.Errorf("bw=%v: exit = %v, want %v", bw, exit, want)
		}
		// The pipe must stay usable: a second packet also transmits
		// instantly (no poisoned lastTxDone).
		if _, exit2 := p.Enqueue(pkt(1500), vtime.Time(vtime.Millisecond)); exit2 != want {
			t.Errorf("bw=%v: second exit = %v, want %v", bw, exit2, want)
		}
		if n := p.DequeueReady(want, func(*Packet, vtime.Time) {}); n != 2 {
			t.Errorf("bw=%v: delivered %d of 2", bw, n)
		}
	}
}

// The documented SetParams contract: in-flight packets keep the schedule
// they were assigned on entry — a parameter change never reschedules them.
func TestSetParamsKeepsInFlightSchedule(t *testing.T) {
	p := New(0, mkParams(8, 10*vtime.Millisecond, 10), 1)
	_, e1 := p.Enqueue(pkt(1000), 0) // tx 1ms, exit 11ms
	_, e2 := p.Enqueue(pkt(1000), 0) // tx done 2ms, exit 12ms
	// Slash bandwidth and latency while both packets are inside.
	p.SetParams(mkParams(0.001, 500*vtime.Millisecond, 10))
	if d := p.NextDeadline(); d != e1 {
		t.Errorf("deadline moved after SetParams: %v, want %v", d, e1)
	}
	var exits []vtime.Time
	p.DequeueReady(vtime.Forever-1, func(_ *Packet, at vtime.Time) { exits = append(exits, at) })
	if len(exits) != 2 || exits[0] != e1 || exits[1] != e2 {
		t.Errorf("exits = %v, want [%v %v]", exits, e1, e2)
	}
}

// A latency cut mid-queue must not let a later packet exit the pipe before
// an earlier one: the delay line is FIFO (as in dummynet), so the later
// packet's exit clamps to the earlier packet's. Execution modes that forward
// each packet at its own exit time (eager cross-shard handoff) and the
// sequential head-of-line dequeuer only agree under this invariant.
func TestSetParamsLatencyCutKeepsFIFO(t *testing.T) {
	p := New(0, mkParams(8, 10*vtime.Millisecond, 10), 1)
	_, e1 := p.Enqueue(pkt(1000), 0) // tx 1ms, exit 11ms
	p.SetParams(mkParams(8, 1*vtime.Millisecond, 10))
	_, e2 := p.Enqueue(pkt(1000), 0) // would exit 3ms; clamps to 11ms
	if e2 < e1 {
		t.Fatalf("latency cut reordered exits: e2 %v < e1 %v", e2, e1)
	}
	if e2 != e1 {
		t.Errorf("e2 = %v, want clamped to e1 %v", e2, e1)
	}
	// A third packet after the backlog exits under the new latency, still
	// in order: txStart 2ms, tx 1ms, +1ms latency = 4ms, clamped to 11ms.
	_, e3 := p.Enqueue(pkt(1000), 0)
	if e3 != e1 {
		t.Errorf("e3 = %v, want clamped to %v", e3, e1)
	}
	// Deliveries pop in FIFO order at their exact (clamped) exits.
	var exits []vtime.Time
	p.DequeueReady(vtime.Forever-1, func(_ *Packet, at vtime.Time) { exits = append(exits, at) })
	if len(exits) != 3 || exits[0] != e1 || exits[1] != e2 || exits[2] != e3 {
		t.Errorf("exits = %v, want [%v %v %v]", exits, e1, e2, e3)
	}
}

// When bandwidth drops mid-queue, lastTxDone (set under the old rate) still
// serializes the next packet: its transmission starts when the queued bytes
// finish at the old rate, and proceeds at the new rate.
func TestSetParamsLastTxDoneOnBandwidthDrop(t *testing.T) {
	p := New(0, mkParams(8, 0, 10), 1)
	p.Enqueue(pkt(1000), 0) // tx done at 1ms (8 Mb/s)
	p.Enqueue(pkt(1000), 0) // tx done at 2ms
	p.SetParams(mkParams(2, 0, 10))
	// New packet waits for the old-rate backlog (2ms), then takes 4ms at
	// the new 2 Mb/s: exit 6ms.
	_, e3 := p.Enqueue(pkt(1000), 0)
	if want := vtime.Time(6 * vtime.Millisecond); e3 != want {
		t.Errorf("e3 = %v, want %v", e3, want)
	}
	// And lastTxDone was advanced under the new rate for the one after.
	_, e4 := p.Enqueue(pkt(1000), 0)
	if want := vtime.Time(10 * vtime.Millisecond); e4 != want {
		t.Errorf("e4 = %v, want %v", e4, want)
	}
}

// A down link blackholes new packets but lets in-flight ones drain on their
// original schedule; recovery restores normal service.
func TestPipeLinkDown(t *testing.T) {
	up := mkParams(8, 10*vtime.Millisecond, 10)
	p := New(0, up, 1)
	_, e1 := p.Enqueue(pkt(1000), 0)
	down := up
	down.Down = true
	p.SetParams(down)
	if r, _ := p.Enqueue(pkt(1000), 0); r != DropLinkDown {
		t.Fatalf("enqueue on down link: %v, want DropLinkDown", r)
	}
	if p.Drops[DropLinkDown] != 1 || p.TotalDrops() != 1 {
		t.Errorf("drop counters: down=%d total=%d", p.Drops[DropLinkDown], p.TotalDrops())
	}
	// The in-flight packet still exits on schedule.
	if n := p.DequeueReady(e1, func(*Packet, vtime.Time) {}); n != 1 {
		t.Fatalf("in-flight packet did not drain: %d", n)
	}
	// Recovery: the link carries traffic again, transmitter idle.
	p.SetParams(up)
	now := vtime.Time(20 * vtime.Millisecond)
	r, exit := p.Enqueue(pkt(1000), now)
	if r != DropNone {
		t.Fatalf("enqueue after recovery: %v", r)
	}
	if want := now.Add(11 * vtime.Millisecond); exit != want {
		t.Errorf("post-recovery exit = %v, want %v", exit, want)
	}
	if s := DropLinkDown.String(); s != "link-down" {
		t.Errorf("DropLinkDown.String() = %q", s)
	}
}

// Property: conservation — every enqueued packet is either delivered or
// counted as dropped, and deliveries are in exit-time order.
func TestPipeConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		params := mkParams(1+rng.Float64()*99, vtime.Duration(rng.Intn(int(10*vtime.Millisecond))), rng.Intn(20)+1)
		params.LossRate = rng.Float64() * 0.2
		p := New(ID(seed&0xff), params, seed)
		now := vtime.Time(0)
		accepted := 0
		for i := 0; i < n; i++ {
			now = now.Add(vtime.Duration(rng.Intn(int(vtime.Millisecond))))
			if r, _ := p.Enqueue(pkt(rng.Intn(1400)+100), now); r == DropNone {
				accepted++
			}
		}
		var lastExit vtime.Time
		delivered := 0
		for {
			d := p.NextDeadline()
			if d == vtime.Forever {
				break
			}
			if d < lastExit {
				return false
			}
			lastExit = d
			delivered += p.DequeueReady(d, func(*Packet, vtime.Time) {})
		}
		if delivered != accepted {
			return false
		}
		return p.Accepted == uint64(accepted) &&
			uint64(n-accepted) == p.TotalDrops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: exit times always ≥ arrival + size/bw + latency (never faster
// than physics allows).
func TestPipeNeverFasterThanLink(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := mkParams(1+rng.Float64()*999, vtime.Duration(rng.Intn(int(50*vtime.Millisecond))), 1000)
		p := New(0, params, seed)
		now := vtime.Time(0)
		for i := 0; i < 100; i++ {
			now = now.Add(vtime.Duration(rng.Intn(int(2 * vtime.Millisecond))))
			size := rng.Intn(1400) + 64
			r, exit := p.Enqueue(pkt(size), now)
			if r != DropNone {
				continue
			}
			minExit := now.
				Add(vtime.Duration(float64(size*8) / params.BandwidthBps * float64(vtime.Second))).
				Add(params.Latency)
			if exit < minExit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestREDDropsEarly(t *testing.T) {
	params := mkParams(1, 0, 100) // slow pipe, builds queue
	params.RED = DefaultRED(100)
	p := New(0, params, 7)
	redDrops := 0
	overflow := 0
	// Offer far more than the pipe can carry; RED should kick in before
	// the queue hard-fills.
	now := vtime.Time(0)
	for i := 0; i < 5000; i++ {
		now = now.Add(vtime.Duration(10 * vtime.Microsecond))
		switch r, _ := p.Enqueue(pkt(1500), now); r {
		case DropRED:
			redDrops++
		case DropBacklog:
			overflow++
		}
	}
	if redDrops == 0 {
		t.Error("RED never dropped under sustained overload")
	}
}

func TestREDIdleDecay(t *testing.T) {
	params := mkParams(1, 0, 100)
	params.RED = DefaultRED(100)
	p := New(0, params, 7)
	now := vtime.Time(0)
	for i := 0; i < 2000; i++ {
		now = now.Add(vtime.Duration(10 * vtime.Microsecond))
		p.Enqueue(pkt(1500), now)
	}
	avgLoaded := p.red.avg
	// Drain fully and wait a long idle period.
	now = now.Add(60 * vtime.Second)
	p.DequeueReady(now, func(*Packet, vtime.Time) {})
	now = now.Add(10 * vtime.Second)
	p.Enqueue(pkt(100), now)
	if p.red.avg >= avgLoaded/2 {
		t.Errorf("RED average did not decay over idle: %v -> %v", avgLoaded, p.red.avg)
	}
}

func TestHeapOrdering(t *testing.T) {
	h := NewHeap()
	var ps []*Pipe
	for i := 0; i < 20; i++ {
		p := New(ID(i), mkParams(8, vtime.Duration(i+1)*vtime.Millisecond, 100), 1)
		p.Enqueue(pkt(1000), 0)
		ps = append(ps, p)
		h.Update(p)
	}
	if h.Len() != 20 {
		t.Fatalf("heap len %d", h.Len())
	}
	// Pipe 0 has the smallest latency; min deadline should be pipe 0's.
	if h.Min() != ps[0].NextDeadline() {
		t.Errorf("min = %v, want %v", h.Min(), ps[0].NextDeadline())
	}
	// Pop everything in order.
	var last vtime.Time
	count := 0
	for h.Len() > 0 {
		now := h.Min()
		if now < last {
			t.Fatal("heap order violated")
		}
		last = now
		h.PopReady(now, func(p *Pipe) {
			p.DequeueReady(now, func(*Packet, vtime.Time) {})
			count++
			h.Update(p) // empty now; should not reinsert
		})
	}
	if count != 20 {
		t.Errorf("visited %d pipes", count)
	}
}

func TestHeapUpdateMoves(t *testing.T) {
	h := NewHeap()
	a := New(1, mkParams(8, 10*vtime.Millisecond, 100), 1)
	b := New(2, mkParams(8, 20*vtime.Millisecond, 100), 1)
	a.Enqueue(pkt(1000), 0)
	b.Enqueue(pkt(1000), 0)
	h.Update(a)
	h.Update(b)
	if h.Min() != a.NextDeadline() {
		t.Fatal("a should be min")
	}
	// Drain a, give it a later packet; heap should now lead with b.
	a.DequeueReady(a.NextDeadline(), func(*Packet, vtime.Time) {})
	a.Enqueue(pkt(1000), vtime.Time(100*vtime.Millisecond))
	h.Update(a)
	if h.Min() != b.NextDeadline() {
		t.Errorf("min = %v, want b's %v", h.Min(), b.NextDeadline())
	}
}

// Property: heap Min always equals the true minimum deadline across live pipes.
func TestHeapMinProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap()
		var ps []*Pipe
		for i := 0; i < 30; i++ {
			p := New(ID(i), mkParams(1+rng.Float64()*100, vtime.Duration(rng.Intn(int(20*vtime.Millisecond))), 100), seed+int64(i))
			ps = append(ps, p)
		}
		now := vtime.Time(0)
		for step := 0; step < 200; step++ {
			p := ps[rng.Intn(len(ps))]
			switch rng.Intn(3) {
			case 0, 1:
				p.Enqueue(pkt(rng.Intn(1400)+100), now)
				h.Update(p)
			case 2:
				d := p.NextDeadline()
				if d != vtime.Forever {
					if d > now {
						now = d
					}
					p.DequeueReady(now, func(*Packet, vtime.Time) {})
					h.Update(p)
				}
			}
			// Verify Min invariant.
			want := vtime.Forever
			for _, q := range ps {
				if d := q.NextDeadline(); d < want {
					want = d
				}
			}
			if h.Min() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPipeEnqueueDequeue(b *testing.B) {
	p := New(0, mkParams(1000, vtime.Duration(vtime.Millisecond), 1<<20), 1)
	pk := pkt(1500)
	now := vtime.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(12 * vtime.Microsecond)
		p.Enqueue(pk, now)
		p.DequeueReady(now, func(*Packet, vtime.Time) {})
	}
}
