package pipes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"modelnet/internal/vtime"
)

func mkParams(mbps float64, lat vtime.Duration, qcap int) Params {
	return Params{BandwidthBps: mbps * 1e6, Latency: lat, QueuePkts: qcap}
}

func pkt(size int) *Packet { return &Packet{Size: size} }

func TestPipeBasicTiming(t *testing.T) {
	// 8 Mb/s, 10 ms latency: a 1000-byte packet transmits in 1 ms,
	// exits at 11 ms.
	p := New(0, mkParams(8, 10*vtime.Millisecond, 10), 1)
	reason, exit := p.Enqueue(pkt(1000), 0)
	if reason != DropNone {
		t.Fatalf("dropped: %v", reason)
	}
	want := vtime.Time(11 * vtime.Millisecond)
	if exit != want {
		t.Fatalf("exit = %v, want %v", exit, want)
	}
	if d := p.NextDeadline(); d != want {
		t.Fatalf("deadline = %v, want %v", d, want)
	}
	n := p.DequeueReady(want, func(*Packet, vtime.Time) {})
	if n != 1 {
		t.Fatalf("delivered %d", n)
	}
	if p.NextDeadline() != vtime.Forever {
		t.Error("empty pipe deadline not Forever")
	}
}

func TestPipeSerialization(t *testing.T) {
	// Two back-to-back packets: second waits for the first's transmission
	// (but latency overlaps — that's the delay line).
	p := New(0, mkParams(8, 10*vtime.Millisecond, 10), 1)
	_, exit1 := p.Enqueue(pkt(1000), 0)
	_, exit2 := p.Enqueue(pkt(1000), 0)
	if exit1 != vtime.Time(11*vtime.Millisecond) {
		t.Errorf("exit1 = %v", exit1)
	}
	if exit2 != vtime.Time(12*vtime.Millisecond) {
		t.Errorf("exit2 = %v, want 12ms (serialized tx, pipelined latency)", exit2)
	}
}

func TestPipeIdleGap(t *testing.T) {
	p := New(0, mkParams(8, vtime.Duration(0), 10), 1)
	_, e1 := p.Enqueue(pkt(1000), 0)
	p.DequeueReady(e1, func(*Packet, vtime.Time) {})
	// After idle, transmission starts at arrival, not at lastTxDone.
	_, e2 := p.Enqueue(pkt(1000), vtime.Time(50*vtime.Millisecond))
	want := vtime.Time(51 * vtime.Millisecond)
	if e2 != want {
		t.Errorf("exit after idle = %v, want %v", e2, want)
	}
}

func TestPipeOverflow(t *testing.T) {
	// Queue cap 3. Saturate instantaneously: packets beyond cap drop.
	p := New(0, mkParams(1, 0, 3), 1)
	drops := 0
	for i := 0; i < 10; i++ {
		if r, _ := p.Enqueue(pkt(1500), 0); r == DropOverflow {
			drops++
		}
	}
	if drops != 7 {
		t.Errorf("drops = %d, want 7 (cap 3)", drops)
	}
	if p.Drops[DropOverflow] != 7 {
		t.Errorf("stat drops = %d", p.Drops[DropOverflow])
	}
}

func TestPipeQueueDrains(t *testing.T) {
	// After the transmission queue drains, new packets are accepted again.
	p := New(0, mkParams(12, 0, 2), 1) // 1500B = 1ms at 12Mb/s
	p.Enqueue(pkt(1500), 0)
	p.Enqueue(pkt(1500), 0)
	if r, _ := p.Enqueue(pkt(1500), 0); r != DropOverflow {
		t.Fatal("third packet at t=0 should overflow")
	}
	// At t=1ms the first tx is done; one slot frees.
	if r, _ := p.Enqueue(pkt(1500), vtime.Time(1*vtime.Millisecond)); r != DropNone {
		t.Fatal("packet after drain should be accepted")
	}
}

func TestPipeRandomLoss(t *testing.T) {
	params := mkParams(1000, 0, 1<<20)
	params.LossRate = 0.3
	p := New(0, params, 42)
	const n = 20000
	lost := 0
	for i := 0; i < n; i++ {
		if r, _ := p.Enqueue(pkt(100), 0); r == DropRandomLoss {
			lost++
		}
	}
	got := float64(lost) / n
	if got < 0.27 || got > 0.33 {
		t.Errorf("loss fraction %.3f, want ≈0.3", got)
	}
}

func TestPipeFIFOOrder(t *testing.T) {
	p := New(0, mkParams(100, vtime.Duration(5*vtime.Millisecond), 1000), 1)
	var sent []uint64
	for i := 0; i < 50; i++ {
		pk := pkt(100 + i*10)
		pk.Seq = uint64(i)
		sent = append(sent, pk.Seq)
		p.Enqueue(pk, vtime.Time(i))
	}
	var got []uint64
	p.DequeueReady(vtime.Forever-1, func(pk *Packet, _ vtime.Time) { got = append(got, pk.Seq) })
	if len(got) != len(sent) {
		t.Fatalf("delivered %d of %d", len(got), len(sent))
	}
	for i := range got {
		if got[i] != sent[i] {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestSetParamsAffectsNewPackets(t *testing.T) {
	p := New(0, mkParams(8, 0, 10), 1)
	_, e1 := p.Enqueue(pkt(1000), 0) // 1ms at 8Mb/s
	p.SetParams(mkParams(4, 0, 10))
	_, e2 := p.Enqueue(pkt(1000), 0) // 2ms at 4Mb/s, queued behind first
	if e1 != vtime.Time(1*vtime.Millisecond) {
		t.Errorf("e1 = %v", e1)
	}
	if e2 != vtime.Time(3*vtime.Millisecond) {
		t.Errorf("e2 = %v, want 3ms", e2)
	}
}

// Property: conservation — every enqueued packet is either delivered or
// counted as dropped, and deliveries are in exit-time order.
func TestPipeConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		params := mkParams(1+rng.Float64()*99, vtime.Duration(rng.Intn(int(10*vtime.Millisecond))), rng.Intn(20)+1)
		params.LossRate = rng.Float64() * 0.2
		p := New(ID(seed&0xff), params, seed)
		now := vtime.Time(0)
		accepted := 0
		for i := 0; i < n; i++ {
			now = now.Add(vtime.Duration(rng.Intn(int(vtime.Millisecond))))
			if r, _ := p.Enqueue(pkt(rng.Intn(1400)+100), now); r == DropNone {
				accepted++
			}
		}
		var lastExit vtime.Time
		delivered := 0
		for {
			d := p.NextDeadline()
			if d == vtime.Forever {
				break
			}
			if d < lastExit {
				return false
			}
			lastExit = d
			delivered += p.DequeueReady(d, func(*Packet, vtime.Time) {})
		}
		if delivered != accepted {
			return false
		}
		return p.Accepted == uint64(accepted) &&
			uint64(n-accepted) == p.TotalDrops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: exit times always ≥ arrival + size/bw + latency (never faster
// than physics allows).
func TestPipeNeverFasterThanLink(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := mkParams(1+rng.Float64()*999, vtime.Duration(rng.Intn(int(50*vtime.Millisecond))), 1000)
		p := New(0, params, seed)
		now := vtime.Time(0)
		for i := 0; i < 100; i++ {
			now = now.Add(vtime.Duration(rng.Intn(int(2 * vtime.Millisecond))))
			size := rng.Intn(1400) + 64
			r, exit := p.Enqueue(pkt(size), now)
			if r != DropNone {
				continue
			}
			minExit := now.
				Add(vtime.Duration(float64(size*8) / params.BandwidthBps * float64(vtime.Second))).
				Add(params.Latency)
			if exit < minExit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestREDDropsEarly(t *testing.T) {
	params := mkParams(1, 0, 100) // slow pipe, builds queue
	params.RED = DefaultRED(100)
	p := New(0, params, 7)
	redDrops := 0
	overflow := 0
	// Offer far more than the pipe can carry; RED should kick in before
	// the queue hard-fills.
	now := vtime.Time(0)
	for i := 0; i < 5000; i++ {
		now = now.Add(vtime.Duration(10 * vtime.Microsecond))
		switch r, _ := p.Enqueue(pkt(1500), now); r {
		case DropRED:
			redDrops++
		case DropOverflow:
			overflow++
		}
	}
	if redDrops == 0 {
		t.Error("RED never dropped under sustained overload")
	}
}

func TestREDIdleDecay(t *testing.T) {
	params := mkParams(1, 0, 100)
	params.RED = DefaultRED(100)
	p := New(0, params, 7)
	now := vtime.Time(0)
	for i := 0; i < 2000; i++ {
		now = now.Add(vtime.Duration(10 * vtime.Microsecond))
		p.Enqueue(pkt(1500), now)
	}
	avgLoaded := p.red.avg
	// Drain fully and wait a long idle period.
	now = now.Add(60 * vtime.Second)
	p.DequeueReady(now, func(*Packet, vtime.Time) {})
	now = now.Add(10 * vtime.Second)
	p.Enqueue(pkt(100), now)
	if p.red.avg >= avgLoaded/2 {
		t.Errorf("RED average did not decay over idle: %v -> %v", avgLoaded, p.red.avg)
	}
}

func TestHeapOrdering(t *testing.T) {
	h := NewHeap()
	var ps []*Pipe
	for i := 0; i < 20; i++ {
		p := New(ID(i), mkParams(8, vtime.Duration(i+1)*vtime.Millisecond, 100), 1)
		p.Enqueue(pkt(1000), 0)
		ps = append(ps, p)
		h.Update(p)
	}
	if h.Len() != 20 {
		t.Fatalf("heap len %d", h.Len())
	}
	// Pipe 0 has the smallest latency; min deadline should be pipe 0's.
	if h.Min() != ps[0].NextDeadline() {
		t.Errorf("min = %v, want %v", h.Min(), ps[0].NextDeadline())
	}
	// Pop everything in order.
	var last vtime.Time
	count := 0
	for h.Len() > 0 {
		now := h.Min()
		if now < last {
			t.Fatal("heap order violated")
		}
		last = now
		h.PopReady(now, func(p *Pipe) {
			p.DequeueReady(now, func(*Packet, vtime.Time) {})
			count++
			h.Update(p) // empty now; should not reinsert
		})
	}
	if count != 20 {
		t.Errorf("visited %d pipes", count)
	}
}

func TestHeapUpdateMoves(t *testing.T) {
	h := NewHeap()
	a := New(1, mkParams(8, 10*vtime.Millisecond, 100), 1)
	b := New(2, mkParams(8, 20*vtime.Millisecond, 100), 1)
	a.Enqueue(pkt(1000), 0)
	b.Enqueue(pkt(1000), 0)
	h.Update(a)
	h.Update(b)
	if h.Min() != a.NextDeadline() {
		t.Fatal("a should be min")
	}
	// Drain a, give it a later packet; heap should now lead with b.
	a.DequeueReady(a.NextDeadline(), func(*Packet, vtime.Time) {})
	a.Enqueue(pkt(1000), vtime.Time(100*vtime.Millisecond))
	h.Update(a)
	if h.Min() != b.NextDeadline() {
		t.Errorf("min = %v, want b's %v", h.Min(), b.NextDeadline())
	}
}

// Property: heap Min always equals the true minimum deadline across live pipes.
func TestHeapMinProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap()
		var ps []*Pipe
		for i := 0; i < 30; i++ {
			p := New(ID(i), mkParams(1+rng.Float64()*100, vtime.Duration(rng.Intn(int(20*vtime.Millisecond))), 100), seed+int64(i))
			ps = append(ps, p)
		}
		now := vtime.Time(0)
		for step := 0; step < 200; step++ {
			p := ps[rng.Intn(len(ps))]
			switch rng.Intn(3) {
			case 0, 1:
				p.Enqueue(pkt(rng.Intn(1400)+100), now)
				h.Update(p)
			case 2:
				d := p.NextDeadline()
				if d != vtime.Forever {
					if d > now {
						now = d
					}
					p.DequeueReady(now, func(*Packet, vtime.Time) {})
					h.Update(p)
				}
			}
			// Verify Min invariant.
			want := vtime.Forever
			for _, q := range ps {
				if d := q.NextDeadline(); d < want {
					want = d
				}
			}
			if h.Min() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPipeEnqueueDequeue(b *testing.B) {
	p := New(0, mkParams(1000, vtime.Duration(vtime.Millisecond), 1<<20), 1)
	pk := pkt(1500)
	now := vtime.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(12 * vtime.Microsecond)
		p.Enqueue(pk, now)
		p.DequeueReady(now, func(*Packet, vtime.Time) {})
	}
}
