package pipes

// Dedicated heap tests, white-box: the pipe's queue is crafted directly so
// Update can be driven through transitions the emulator only produces under
// load — removal via a Forever deadline, in-place deadline increases and
// decreases (re-sift down and up), and PopReady over tied deadlines.

import (
	"math/rand"
	"sort"
	"testing"

	"modelnet/internal/vtime"
)

// setDeadline forces p's next deadline to d (Forever = empty pipe).
func setDeadline(p *Pipe, d vtime.Time) {
	p.head, p.txHead = 0, 0
	if d == vtime.Forever {
		p.q = p.q[:0]
		return
	}
	p.q = append(p.q[:0], entry{exit: d})
}

// bareWithDeadline builds a pipe the heap can track without going through
// Enqueue (the heap touches only ID and NextDeadline).
func bareWithDeadline(id ID, d vtime.Time) *Pipe {
	p := &Pipe{id: id}
	setDeadline(p, d)
	return p
}

func TestHeapUpdateForeverRemoves(t *testing.T) {
	h := NewHeap()
	ps := make([]*Pipe, 5)
	for i := range ps {
		ps[i] = bareWithDeadline(ID(i), vtime.Time((i+1)*10))
		h.Update(ps[i])
	}
	// Remove the minimum: the next-smallest must surface.
	setDeadline(ps[0], vtime.Forever)
	h.Update(ps[0])
	if h.Len() != 4 || h.Min() != 20 {
		t.Fatalf("after removing min: len %d min %v", h.Len(), h.Min())
	}
	// Removing an untracked pipe is a no-op.
	h.Update(ps[0])
	if h.Len() != 4 {
		t.Fatalf("double removal changed len to %d", h.Len())
	}
	// Remove from the middle and the tail.
	setDeadline(ps[2], vtime.Forever)
	h.Update(ps[2])
	setDeadline(ps[4], vtime.Forever)
	h.Update(ps[4])
	if h.Len() != 2 || h.Min() != 20 {
		t.Fatalf("after middle+tail removal: len %d min %v", h.Len(), h.Min())
	}
	// Re-inserting a removed pipe works.
	setDeadline(ps[0], 5)
	h.Update(ps[0])
	if h.Len() != 3 || h.Min() != 5 {
		t.Fatalf("after re-insert: len %d min %v", h.Len(), h.Min())
	}
}

func TestHeapUpdateResifts(t *testing.T) {
	h := NewHeap()
	ps := make([]*Pipe, 8)
	for i := range ps {
		ps[i] = bareWithDeadline(ID(i), vtime.Time((i+1)*100))
		h.Update(ps[i])
	}
	// Increase the minimum past everything: it must sift down.
	setDeadline(ps[0], 10_000)
	h.Update(ps[0])
	if h.Min() != 200 {
		t.Fatalf("after increase: min %v, want 200", h.Min())
	}
	// Decrease a tail pipe below everything: it must sift up.
	setDeadline(ps[7], 1)
	h.Update(ps[7])
	if h.Min() != 1 {
		t.Fatalf("after decrease: min %v, want 1", h.Min())
	}
	// An equal-deadline update must not corrupt the heap.
	setDeadline(ps[3], 400)
	h.Update(ps[3])
	// Drain: pops must come out in nondecreasing deadline order and cover
	// every pipe exactly once.
	seen := map[ID]bool{}
	last := vtime.Time(-1)
	for h.Len() > 0 {
		now := h.Min()
		if now < last {
			t.Fatalf("heap order violated: %v after %v", now, last)
		}
		last = now
		h.PopReady(now, func(p *Pipe) {
			if seen[p.ID()] {
				t.Fatalf("pipe %d popped twice", p.ID())
			}
			seen[p.ID()] = true
			setDeadline(p, vtime.Forever)
		})
	}
	if len(seen) != len(ps) {
		t.Fatalf("drained %d of %d pipes", len(seen), len(ps))
	}
}

func TestHeapPopReadyTies(t *testing.T) {
	build := func() (*Heap, []*Pipe) {
		h := NewHeap()
		ps := make([]*Pipe, 9)
		for i := range ps {
			d := vtime.Time(50) // pipes 0..5 tie
			if i >= 6 {
				d = vtime.Time(100 + i) // 6..8 later
			}
			ps[i] = bareWithDeadline(ID(i), d)
			h.Update(ps[i])
		}
		return h, ps
	}
	h, _ := build()
	var order []ID
	n := h.PopReady(50, func(p *Pipe) { order = append(order, p.ID()) })
	if n != 6 || len(order) != 6 {
		t.Fatalf("popped %d pipes (%v), want the 6 tied ones", n, order)
	}
	sorted := append([]ID(nil), order...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, id := range sorted {
		if id != ID(i) {
			t.Fatalf("tied pop covered %v, want pipes 0..5", order)
		}
	}
	if h.Len() != 3 || h.Min() != 106 {
		t.Fatalf("after tied pop: len %d min %v", h.Len(), h.Min())
	}
	// Tie order is deterministic: an identical build pops identically.
	h2, _ := build()
	var order2 []ID
	h2.PopReady(50, func(p *Pipe) { order2 = append(order2, p.ID()) })
	for i := range order {
		if order[i] != order2[i] {
			t.Fatalf("tie order not deterministic: %v vs %v", order, order2)
		}
	}
}

// Property: under arbitrary churn of insert/move/remove, Min always equals
// the true minimum and membership matches a shadow map.
func TestHeapChurnProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHeap()
	ps := make([]*Pipe, 16)
	for i := range ps {
		ps[i] = bareWithDeadline(ID(i), vtime.Forever)
	}
	for step := 0; step < 5000; step++ {
		p := ps[rng.Intn(len(ps))]
		switch rng.Intn(4) {
		case 0, 1: // set (insert or move, including decreases)
			setDeadline(p, vtime.Time(rng.Intn(1000)+1))
		case 2: // remove
			setDeadline(p, vtime.Forever)
		case 3: // equal re-update
		}
		h.Update(p)
		want, live := vtime.Forever, 0
		for _, q := range ps {
			if d := q.NextDeadline(); d != vtime.Forever {
				live++
				if d < want {
					want = d
				}
			}
		}
		if h.Min() != want || h.Len() != live {
			t.Fatalf("step %d: min %v want %v, len %d want %d", step, h.Min(), want, h.Len(), live)
		}
	}
}
