package pipes

import (
	"modelnet/internal/vtime"
)

// VN identifies a virtual edge node (an application endpoint with its own
// IP address in the emulated network).
type VN int32

// ID names a pipe within an emulation. Dense, starting at 0.
type ID int32

// Packet is the descriptor that traverses the pipe network. The core
// schedules descriptors; payload travels by reference in Payload and is
// never touched by emulation (link emulation does not require access to the
// packet contents, §2.2).
type Packet struct {
	Seq  uint64 // unique per emulation, assigned at injection
	Size int    // bytes on the wire, including headers

	Src, Dst VN

	// Route is the ordered list of pipes from source to destination,
	// resolved at injection from the routing matrix. Hop indexes the next
	// pipe to traverse.
	Route []ID
	Hop   int

	// Injected is when the packet entered the core. Lag accumulates the
	// scheduler-quantization delay added at each hop relative to exact
	// (unquantized) pipe exits; the accuracy tracker (§3.1) records
	// Lag + final-hop error at delivery.
	Injected vtime.Time
	Lag      vtime.Duration

	// Epoch is the reroute epoch the packet's route was resolved under,
	// pinned at injection. Sharded workers extend a tunneled packet's route
	// with this epoch's distance fields, so an in-flight packet follows the
	// exact route the injection-time table produced even when reroutes land
	// while it crosses shards. Always 0 for tables without epochs (Matrix).
	Epoch int32

	// Trace is the packet's mode-invariant trace ID (src VN in the high 32
	// bits, the per-source injection ordinal in the low 32), minted by the
	// observability tracer at injection. Zero when tracing is disabled.
	// Unlike Seq — which embeds the injecting shard and so differs across
	// execution modes — Trace identifies the same packet in every mode.
	Trace uint64

	// Payload carries protocol state (a TCP segment, an RPC frame, ...) by
	// reference.
	Payload any
}

// DropReason classifies why a packet was dropped. It is the unified drop
// taxonomy: pipe-level admission reasons (backlog, loss, RED, link-down),
// the route-lookup rejection (unreachable), and the live-edge gateway
// rejections (oversize, gateway-reject) share one enum so reports and
// traces count every loss the same way.
type DropReason int

const (
	// DropNone means the packet was accepted.
	DropNone DropReason = iota
	// DropBacklog is a congestion-related queue overflow (tail drop).
	DropBacklog
	// DropRandomLoss is the pipe's configured random loss.
	DropRandomLoss
	// DropRED is an early drop by the RED policy.
	DropRED
	// DropLinkDown means the pipe was administratively down (link failure
	// injected by internal/dynamics): new packets blackhole while packets
	// already inside the pipe drain on their original schedule.
	DropLinkDown
	// DropUnreachable means route lookup found no path for the
	// destination; the packet never reached a pipe.
	DropUnreachable
	// DropOversize means a live-edge ingress datagram exceeded the
	// gateway's datagram bound.
	DropOversize
	// DropGatewayReject means the live-edge gateway rejected a datagram
	// for any other reason (unmapped flow, ingress queue full).
	DropGatewayReject

	// numDropReasons sizes per-reason counters.
	numDropReasons
)

// NumDropReasons is the size of a complete per-reason drop counter vector
// (indexable by DropReason).
const NumDropReasons = int(numDropReasons)

func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropBacklog:
		return "backlog"
	case DropRandomLoss:
		return "loss"
	case DropRED:
		return "red"
	case DropLinkDown:
		return "link-down"
	case DropUnreachable:
		return "unreachable"
	case DropOversize:
		return "oversize"
	case DropGatewayReject:
		return "gateway-reject"
	}
	return "unknown"
}
