package pipes

import (
	"modelnet/internal/vtime"
)

// VN identifies a virtual edge node (an application endpoint with its own
// IP address in the emulated network).
type VN int32

// ID names a pipe within an emulation. Dense, starting at 0.
type ID int32

// Packet is the descriptor that traverses the pipe network. The core
// schedules descriptors; payload travels by reference in Payload and is
// never touched by emulation (link emulation does not require access to the
// packet contents, §2.2).
type Packet struct {
	Seq  uint64 // unique per emulation, assigned at injection
	Size int    // bytes on the wire, including headers

	Src, Dst VN

	// Route is the ordered list of pipes from source to destination,
	// resolved at injection from the routing matrix. Hop indexes the next
	// pipe to traverse.
	Route []ID
	Hop   int

	// Injected is when the packet entered the core. Lag accumulates the
	// scheduler-quantization delay added at each hop relative to exact
	// (unquantized) pipe exits; the accuracy tracker (§3.1) records
	// Lag + final-hop error at delivery.
	Injected vtime.Time
	Lag      vtime.Duration

	// Payload carries protocol state (a TCP segment, an RPC frame, ...) by
	// reference.
	Payload any
}

// DropReason classifies why a packet was dropped by a pipe.
type DropReason int

const (
	// DropNone means the packet was accepted.
	DropNone DropReason = iota
	// DropOverflow is a congestion-related queue overflow (tail drop).
	DropOverflow
	// DropRandomLoss is the pipe's configured random loss.
	DropRandomLoss
	// DropRED is an early drop by the RED policy.
	DropRED
	// DropLinkDown means the pipe was administratively down (link failure
	// injected by internal/dynamics): new packets blackhole while packets
	// already inside the pipe drain on their original schedule.
	DropLinkDown

	// numDropReasons sizes per-reason counters.
	numDropReasons
)

func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropOverflow:
		return "overflow"
	case DropRandomLoss:
		return "loss"
	case DropRED:
		return "red"
	case DropLinkDown:
		return "down"
	}
	return "unknown"
}
