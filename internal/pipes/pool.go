package pipes

// PacketPool is a free list of Packet descriptors. The emulation data path
// allocates one descriptor per injected packet and drops it at delivery or
// drop; at hundreds of thousands of packets per emulated second that
// allocation rate is pure scheduler overhead, so the core recycles
// descriptors instead. Not safe for concurrent use: each emulator (shard)
// owns a private pool touched only from its own event loop.
type PacketPool struct {
	free []*Packet
}

// Get returns a zeroed descriptor, reusing a recycled one when available.
func (p *PacketPool) Get() *Packet {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return pkt
	}
	return &Packet{}
}

// maxPoolFree caps the free list. A shard that receives more cross-core
// packets than it injects (wire-decoded descriptors are fresh allocations)
// would otherwise retain every surplus descriptor forever; past the cap,
// descriptors go back to the garbage collector.
const maxPoolFree = 1 << 16

// Put recycles a descriptor the caller no longer references. All fields are
// cleared — in particular the Route and Payload references, which may be
// shared with live packets and must not be retained by the free list.
func (p *PacketPool) Put(pkt *Packet) {
	if pkt == nil || len(p.free) >= maxPoolFree {
		return
	}
	*pkt = Packet{}
	p.free = append(p.free, pkt)
}

// Len reports the number of descriptors currently in the free list.
func (p *PacketPool) Len() int { return len(p.free) }
