// Package pipes implements ModelNet's emulated links: each pipe has a
// bandwidth, a propagation latency, a random loss rate, and a bounded packet
// queue with a configurable discipline (drop-tail FIFO by default, RED
// optionally). Packets move through pipes by reference; pipe processing
// never copies packet data (§2).
//
// A packet first waits in the pipe's transmission queue for earlier packets
// to drain at the pipe's bandwidth, then rides the delay line for the pipe's
// latency — the delay line holds up to a bandwidth-delay product when the
// link is fully utilized, exactly as in dummynet.
//
// The package also supplies the data-path plumbing the emulation core
// leans on: Packet descriptors (recycled through a PacketPool free list so
// steady-state emulation allocates nothing per packet) and the pipe Heap
// the §2.2 scheduler loop pops ready deadlines from.
package pipes
