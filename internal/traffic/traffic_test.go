package traffic

import (
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/netstack"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

type env struct {
	sched *vtime.Scheduler
	emu   *emucore.Emulator
	g     *topology.Graph
	hosts []*netstack.Host
}

type regAdapter struct{ e *emucore.Emulator }

func (r regAdapter) RegisterVN(vn pipes.VN, fn func(*pipes.Packet)) {
	r.e.RegisterVN(vn, emucore.DeliverFunc(fn))
}

func newEnv(t *testing.T, n int, mbps, ms float64) *env {
	t.Helper()
	g := topology.Star(n, topology.LinkAttrs{BandwidthBps: mbps * 1e6, LatencySec: ms * 1e-3, QueuePkts: 50})
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 5)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{sched: sched, emu: emu, g: g}
	for i := 0; i < n; i++ {
		e.hosts = append(e.hosts, netstack.NewHost(pipes.VN(i), sched, emu, regAdapter{emu}))
	}
	return e
}

func TestBulkAndSink(t *testing.T) {
	e := newEnv(t, 2, 10, 2)
	sink, err := NewSink(e.hosts[1], 80)
	if err != nil {
		t.Fatal(err)
	}
	StartBulk(e.hosts[0], netstack.Endpoint{VN: 1, Port: 80}, 500_000)
	e.sched.RunUntil(vtime.Time(30 * vtime.Second))
	if sink.TotalBytes != 500_000 {
		t.Fatalf("sink got %d bytes", sink.TotalBytes)
	}
	if len(sink.Flows) != 1 || !sink.Flows[0].Closed {
		t.Errorf("flow state: %+v", sink.Flows)
	}
	thr := sink.Flows[0].Throughput()
	if thr < 6e6 || thr > 10e6 {
		t.Errorf("throughput %v, want near 10 Mb/s", thr)
	}
	s := sink.ThroughputSample()
	if s.N() != 1 {
		t.Errorf("sample n = %d", s.N())
	}
}

func TestCBRRate(t *testing.T) {
	e := newEnv(t, 2, 100, 1)
	var rcvd uint64
	e.hosts[1].OpenUDP(9, func(from netstack.Endpoint, dg *netstack.Datagram) { rcvd += uint64(dg.Len) })
	cbr, err := StartCBR(e.hosts[0], netstack.Endpoint{VN: 1, Port: 9}, 1000, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	e.sched.RunUntil(vtime.Time(10 * vtime.Second))
	cbr.Stop()
	e.sched.Run()
	// 1 Mb/s wire rate for ~10 s ≈ 1.25 MB total incl. headers; payload
	// fraction 1000/1028.
	wantLo, wantHi := uint64(1_100_000), uint64(1_260_000)
	if rcvd < wantLo || rcvd > wantHi {
		t.Errorf("CBR delivered %d bytes, want in [%d,%d]", rcvd, wantLo, wantHi)
	}
}

func TestSynthesizeTrace(t *testing.T) {
	cfg := TraceConfig{
		Duration: 150 * vtime.Second,
		Clients:  120,
		MinRate:  60, MaxRate: 100,
		Seed: 1,
	}
	reqs := Synthesize(cfg)
	// 2.5 min at 60-100 req/s: expect roughly 150*80 = 12000 requests.
	if len(reqs) < 10000 || len(reqs) > 14000 {
		t.Fatalf("trace has %d requests, want ≈12000", len(reqs))
	}
	last := vtime.Time(0)
	clients := map[int]bool{}
	for _, r := range reqs {
		if r.At < last {
			t.Fatal("trace not sorted")
		}
		last = r.At
		if r.Client < 0 || r.Client >= 120 {
			t.Fatalf("client %d out of range", r.Client)
		}
		clients[r.Client] = true
		if r.Size < 256 || r.Size > 1<<20 {
			t.Fatalf("size %d out of range", r.Size)
		}
	}
	if len(clients) < 100 {
		t.Errorf("only %d distinct clients", len(clients))
	}
	// Determinism.
	again := Synthesize(cfg)
	if len(again) != len(reqs) || again[0] != reqs[0] || again[len(again)-1] != reqs[len(reqs)-1] {
		t.Error("trace not deterministic for fixed seed")
	}
}

func TestPipeLoads(t *testing.T) {
	e := newEnv(t, 4, 10, 1)
	m := e.emu.Binding().Table.(*bind.Matrix)
	loads := PipeLoads(m, []Demand{
		{Src: 0, Dst: 1, Bps: 2e6},
		{Src: 0, Dst: 2, Bps: 1e6},
	})
	// VN0's uplink carries both demands: 3 Mb/s.
	r01, _ := m.Lookup(0, 1)
	first := r01[0]
	if loads[first] != 3e6 {
		t.Errorf("uplink load = %v, want 3e6", loads[first])
	}
}

func TestCrossTrafficApplyClear(t *testing.T) {
	e := newEnv(t, 2, 10, 5)
	ct := NewCrossTraffic(e.emu)
	base := e.emu.Pipe(0).Params()
	ct.Apply(map[pipes.ID]float64{0: 5e6}) // 50% utilization
	p := e.emu.Pipe(0).Params()
	if p.BandwidthBps >= base.BandwidthBps {
		t.Error("bandwidth not reduced")
	}
	if p.Latency <= base.Latency {
		t.Error("latency not increased")
	}
	if p.QueuePkts >= base.QueuePkts {
		t.Error("queue not reduced")
	}
	ct.Clear()
	if e.emu.Pipe(0).Params() != base {
		t.Error("Clear did not restore base params")
	}
}

func TestCrossTrafficSlowsFlows(t *testing.T) {
	run := func(cross bool) float64 {
		e := newEnv(t, 2, 10, 2)
		sink, _ := NewSink(e.hosts[1], 80)
		if cross {
			ct := NewCrossTraffic(e.emu)
			loads := map[pipes.ID]float64{}
			for i := 0; i < e.emu.NumPipes(); i++ {
				loads[pipes.ID(i)] = 7e6 // 70% background on every pipe
			}
			ct.Apply(loads)
		}
		StartBulk(e.hosts[0], netstack.Endpoint{VN: 1, Port: 80}, 1_000_000)
		e.sched.RunUntil(vtime.Time(60 * vtime.Second))
		if sink.TotalBytes != 1_000_000 {
			t.Fatalf("flow incomplete: %d", sink.TotalBytes)
		}
		return sink.Flows[0].Throughput()
	}
	clean := run(false)
	loaded := run(true)
	if loaded >= clean*0.7 {
		t.Errorf("cross traffic did not slow the flow: %v vs %v bits/s", loaded, clean)
	}
}

func TestPerturberJitterAndRestore(t *testing.T) {
	e := newEnv(t, 4, 10, 5)
	base := make([]pipes.Params, e.emu.NumPipes())
	for i := range base {
		base[i] = e.emu.Pipe(pipes.ID(i)).Params()
	}
	p := NewPerturber(e.emu, 3)
	p.JitterLatency(1.0, 0.25) // all pipes, up to +25%
	changed := 0
	for i := range base {
		now := e.emu.Pipe(pipes.ID(i)).Params()
		if now.Latency > base[i].Latency {
			changed++
		}
		if now.Latency > base[i].Latency+vtime.Duration(float64(base[i].Latency)*0.25)+1 {
			t.Fatalf("pipe %d latency grew beyond 25%%", i)
		}
	}
	if changed == 0 {
		t.Error("jitter changed nothing")
	}
	p.Restore()
	for i := range base {
		if e.emu.Pipe(pipes.ID(i)).Params() != base[i] {
			t.Fatal("restore incomplete")
		}
	}
}

func TestFailLinksReroutes(t *testing.T) {
	// Diamond: VN0 and VN1 connected via two stub paths; failing the fast
	// path must push traffic onto the slow one.
	g := topology.New()
	a := g.AddNode(topology.Client, "a")
	top := g.AddNode(topology.Stub, "top")
	bot := g.AddNode(topology.Stub, "bot")
	bdd := g.AddNode(topology.Client, "b")
	fast := topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.001, QueuePkts: 50}
	slow := topology.LinkAttrs{BandwidthBps: 10e6, LatencySec: 0.020, QueuePkts: 50}
	f1, _ := g.AddDuplex(a, top, fast)
	g.AddDuplex(top, bdd, fast)
	g.AddDuplex(a, bot, slow)
	g.AddDuplex(bot, bdd, slow)

	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := vtime.NewScheduler()
	emu, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h0 := netstack.NewHost(0, sched, emu, regAdapter{emu})
	h1 := netstack.NewHost(1, sched, emu, regAdapter{emu})
	var arrivals []vtime.Time
	h1.OpenUDP(9, func(netstack.Endpoint, *netstack.Datagram) {
		arrivals = append(arrivals, sched.Now())
	})
	s, _ := h0.OpenUDP(0, nil)
	s.SendTo(netstack.Endpoint{VN: 1, Port: 9}, 100, nil)
	sched.At(vtime.Time(vtime.Second), func() {
		if err := FailLinks(emu, g, map[topology.LinkID]bool{f1: true}); err != nil {
			t.Errorf("FailLinks: %v", err)
		}
		s.SendTo(netstack.Endpoint{VN: 1, Port: 9}, 100, nil)
	})
	sched.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals: %v", arrivals)
	}
	d1 := vtime.Duration(arrivals[0])
	d2 := arrivals[1].Sub(vtime.Time(vtime.Second))
	if d2 < 10*d1 {
		t.Errorf("post-failure delivery %v not much slower than %v (reroute failed?)", d2, d1)
	}
	_ = h1
}
