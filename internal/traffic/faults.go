package traffic

import (
	"math/rand"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Fault injection and dynamic network change (§4.3): pipe parameters change
// according to specified probability distributions every x seconds; for
// node or link failures the routing tables are recomputed (the paper's
// "perfect routing protocol" assumption — failover is instantaneous).

// Perturber applies random latency/bandwidth/loss perturbations, as in the
// ACDC experiment: "increase the delay on 25% of randomly chosen IP links
// by between 0-25% of the original delay every 25 seconds".
type Perturber struct {
	emu  *emucore.Emulator
	base []pipes.Params
	rng  *rand.Rand
}

// NewPerturber snapshots base parameters for later restore.
func NewPerturber(emu *emucore.Emulator, seed int64) *Perturber {
	p := &Perturber{emu: emu, rng: rand.New(rand.NewSource(seed))}
	p.base = make([]pipes.Params, emu.NumPipes())
	for i := range p.base {
		p.base[i] = emu.Pipe(pipes.ID(i)).Params()
	}
	return p
}

// JitterLatency picks fraction of pipes at random and increases each one's
// latency by a uniform factor in [0, maxIncrease] of its base latency.
// Unpicked pipes return to base.
func (p *Perturber) JitterLatency(fraction, maxIncrease float64) {
	for i := range p.base {
		params := p.base[i]
		if p.rng.Float64() < fraction {
			params.Latency += vtime.Duration(p.rng.Float64() * maxIncrease * float64(params.Latency))
		}
		p.emu.SetPipeParams(pipes.ID(i), params)
	}
}

// DegradeBandwidth multiplies fraction of pipes' bandwidth by a uniform
// factor in [minFactor, 1].
func (p *Perturber) DegradeBandwidth(fraction, minFactor float64) {
	for i := range p.base {
		params := p.base[i]
		if p.rng.Float64() < fraction {
			f := minFactor + p.rng.Float64()*(1-minFactor)
			params.BandwidthBps *= f
		}
		p.emu.SetPipeParams(pipes.ID(i), params)
	}
}

// RaiseLoss sets fraction of pipes' loss rate to a uniform value in
// [0, maxLoss] — a sudden increase in loss across backbone links.
func (p *Perturber) RaiseLoss(fraction, maxLoss float64) {
	for i := range p.base {
		params := p.base[i]
		if p.rng.Float64() < fraction {
			params.LossRate = p.rng.Float64() * maxLoss
			if params.LossRate >= 1 {
				params.LossRate = 0.999
			}
		}
		p.emu.SetPipeParams(pipes.ID(i), params)
	}
}

// Restore returns every pipe to its snapshot parameters.
func (p *Perturber) Restore() {
	for i, params := range p.base {
		p.emu.SetPipeParams(pipes.ID(i), params)
	}
}

// FailLinks removes the given links from the topology's routing and makes
// the corresponding pipes unusable (packets already routed onto them drop),
// then recomputes all-pairs shortest paths — modeling an instantaneously
// converging routing protocol. It returns an error if some VN pair becomes
// disconnected.
func FailLinks(emu *emucore.Emulator, g *topology.Graph, down map[topology.LinkID]bool) error {
	// Dead pipes: zero capacity is modeled as total loss.
	for lid := range down {
		params := emu.Pipe(pipes.ID(lid)).Params()
		params.LossRate = 0.999999
		emu.SetPipeParams(pipes.ID(lid), params)
	}
	// Reroute on a copy with the links priced out.
	gg := g.Clone()
	for i := range gg.Links {
		if down[gg.Links[i].ID] {
			gg.Links[i].Attr.LatencySec = 1e6 // effectively infinite
		}
	}
	m, err := bind.BuildMatrix(gg, emu.Binding().VNHome)
	if err != nil {
		return err
	}
	// Routes through failed links may still exist if no alternative does;
	// that's the disconnection case (latency 1e6 dominates any real path).
	emu.SetTable(m)
	return nil
}

// HealLinks restores failed links' parameters from the provided base and
// recomputes routing.
func HealLinks(emu *emucore.Emulator, g *topology.Graph, base map[topology.LinkID]pipes.Params) error {
	for lid, params := range base {
		emu.SetPipeParams(pipes.ID(lid), params)
	}
	m, err := bind.BuildMatrix(g, emu.Binding().VNHome)
	if err != nil {
		return err
	}
	emu.SetTable(m)
	return nil
}
