package traffic

import (
	"math"
	"math/rand"
	"sort"

	"modelnet/internal/vtime"
)

// The paper's §5.2 replays 2.5 minutes of a trace of www.ibm.com (Feb
// 2001) at 60–100 requests/second. That trace is proprietary, so this file
// synthesizes an equivalent open-loop workload: Poisson arrivals whose rate
// sweeps the same range, heavy-tailed (lognormal) response sizes typical of
// 2001-era web content, and uniform client attribution. The experiment
// consumes only the arrival times, client IDs, and response sizes, so the
// substitution preserves the behaviour under test (server/network
// contention); see DESIGN.md.

// TraceReq is one request in a playback trace.
type TraceReq struct {
	At     vtime.Time
	Client int // index into the experiment's client VN set
	Size   int // response bytes
}

// TraceConfig parameterizes the synthetic web trace.
type TraceConfig struct {
	Duration vtime.Duration
	Clients  int
	// Request rate sweeps linearly MinRate→MaxRate→MinRate over the run.
	MinRate, MaxRate float64 // requests/second
	// Response size lognormal parameters (of bytes); defaults approximate
	// a 2001 web mix: median ~6 KB, heavy tail capped at MaxSize.
	MedianSize float64
	Sigma      float64
	MaxSize    int
	Seed       int64
}

// Synthesize generates the request trace, sorted by time.
func Synthesize(cfg TraceConfig) []TraceReq {
	if cfg.MedianSize <= 0 {
		cfg.MedianSize = 6 << 10
	}
	if cfg.Sigma <= 0 {
		cfg.Sigma = 1.0
	}
	if cfg.MaxSize <= 0 {
		cfg.MaxSize = 1 << 20
	}
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []TraceReq
	t := 0.0
	total := cfg.Duration.Seconds()
	mu := math.Log(cfg.MedianSize)
	for t < total {
		// Rate at time t: triangle sweep min->max->min.
		frac := t / total
		var rate float64
		if frac < 0.5 {
			rate = cfg.MinRate + (cfg.MaxRate-cfg.MinRate)*frac*2
		} else {
			rate = cfg.MaxRate - (cfg.MaxRate-cfg.MinRate)*(frac-0.5)*2
		}
		if rate <= 0 {
			rate = 1
		}
		t += rng.ExpFloat64() / rate
		if t >= total {
			break
		}
		size := int(math.Exp(mu + cfg.Sigma*rng.NormFloat64()))
		if size < 256 {
			size = 256
		}
		if size > cfg.MaxSize {
			size = cfg.MaxSize
		}
		out = append(out, TraceReq{
			At:     vtime.Time(vtime.DurationOf(t)),
			Client: rng.Intn(cfg.Clients),
			Size:   size,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
