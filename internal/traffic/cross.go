package traffic

import (
	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// Cross traffic by pipe re-parameterization (§4.3): instead of generating
// real background packets (which costs edge and core resources), the user
// specifies a bandwidth-demand matrix between VN pairs; an offline pass
// propagates the demands through the routing matrix onto each pipe, and
// the emulation periodically installs derived pipe settings: reduced
// bandwidth (higher utilization), increased latency (queueing delay from a
// simple analytical model), and a smaller queue bound (less burst
// headroom). Synthetic flows are not congestion-responsive; the error grows
// with utilization — both caveats straight from the paper.

// Demand is one synthetic background flow.
type Demand struct {
	Src, Dst pipes.VN
	Bps      float64
}

// PipeLoads propagates a demand matrix through the routing matrix,
// returning offered background load per pipe in bits/s.
func PipeLoads(m *bind.Matrix, demands []Demand) map[pipes.ID]float64 {
	loads := make(map[pipes.ID]float64)
	for _, d := range demands {
		route, ok := m.Lookup(d.Src, d.Dst)
		if !ok {
			continue
		}
		for _, pid := range route {
			loads[pid] += d.Bps
		}
	}
	return loads
}

// CrossTraffic installs and clears derived pipe settings on an emulator.
type CrossTraffic struct {
	emu  *emucore.Emulator
	base []pipes.Params
	// AvgPktBytes is the packet size assumed by the queueing model
	// (default 1000, the paper's measured average).
	AvgPktBytes int
}

// NewCrossTraffic snapshots the emulator's current pipe parameters as the
// restore point.
func NewCrossTraffic(emu *emucore.Emulator) *CrossTraffic {
	ct := &CrossTraffic{emu: emu, AvgPktBytes: 1000}
	ct.base = make([]pipes.Params, emu.NumPipes())
	for i := range ct.base {
		ct.base[i] = emu.Pipe(pipes.ID(i)).Params()
	}
	return ct
}

// Apply derives and installs pipe settings for the given background loads.
// For a pipe with base bandwidth B carrying background X:
//
//	utilization ρ = X/B (capped at 0.95)
//	bandwidth' = B − X (the residual capacity)
//	latency'  = latency + ρ/(1−ρ) · avgPkt·8/B (M/M/1 waiting time)
//	queue'    = ⌈queue · (1−ρ)⌉ (steady-state occupancy shrinks headroom)
func (ct *CrossTraffic) Apply(loads map[pipes.ID]float64) {
	for pid, x := range loads {
		if int(pid) >= len(ct.base) || x <= 0 {
			continue
		}
		base := ct.base[pid]
		rho := x / base.BandwidthBps
		if rho > 0.95 {
			rho = 0.95
		}
		service := vtime.DurationOf(float64(ct.AvgPktBytes*8) / base.BandwidthBps)
		derived := base
		derived.BandwidthBps = base.BandwidthBps * (1 - rho)
		derived.Latency = base.Latency + vtime.Duration(rho/(1-rho)*float64(service))
		q := base.QueuePkts
		if q <= 0 {
			q = pipes.DefaultQueuePkts
		}
		q = int(float64(q) * (1 - rho))
		if q < 1 {
			q = 1
		}
		derived.QueuePkts = q
		ct.emu.SetPipeParams(pid, derived)
	}
}

// Clear restores every pipe to its snapshot parameters.
func (ct *CrossTraffic) Clear() {
	for i, p := range ct.base {
		ct.emu.SetPipeParams(pipes.ID(i), p)
	}
}

// Schedule periodically applies load matrices: at each interval the next
// matrix in the rotation is derived and installed, emulating time-varying
// background traffic from stored "snapshot" profiles.
type Schedule struct {
	ct       *CrossTraffic
	matrices []map[pipes.ID]float64
	idx      int
	ticker   *vtime.Ticker
}

// NewSchedule builds a rotating cross-traffic schedule.
func NewSchedule(emu *emucore.Emulator, sched *vtime.Scheduler, interval vtime.Duration, matrices []map[pipes.ID]float64) *Schedule {
	s := &Schedule{ct: NewCrossTraffic(emu), matrices: matrices}
	s.ticker = vtime.NewTicker(sched, interval, func() {
		if len(s.matrices) == 0 {
			return
		}
		s.ct.Clear()
		s.ct.Apply(s.matrices[s.idx%len(s.matrices)])
		s.idx++
	})
	return s
}

// Start begins the rotation.
func (s *Schedule) Start() { s.ticker.Start() }

// Stop halts the rotation and restores base parameters.
func (s *Schedule) Stop() {
	s.ticker.Stop()
	s.ct.Clear()
}
