// Package traffic provides workload generators and network-condition
// manipulation: netperf-style bulk TCP and constant-bit-rate UDP sources,
// a synthetic web-trace generator (the §5.2 IBM trace substitute),
// cross-traffic injection via dynamic pipe re-parameterization driven by a
// queueing model (§4.3), and fault/perturbation schedules.
package traffic

import (
	"modelnet/internal/netstack"
	"modelnet/internal/stats"
	"modelnet/internal/vtime"
)

// Sink is a netserver-style TCP receiver that counts bytes per connection.
type Sink struct {
	host *netstack.Host
	port uint16

	Flows      []*FlowStats
	TotalBytes uint64
}

// FlowStats tracks one received flow.
type FlowStats struct {
	From    netstack.Endpoint
	Bytes   uint64
	First   vtime.Time
	Last    vtime.Time
	started bool
	Closed  bool
}

// Throughput returns the flow's average goodput in bits/s over its active
// window (0 when degenerate).
func (f *FlowStats) Throughput() float64 {
	el := f.Last.Sub(f.First).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(f.Bytes*8) / el
}

// NewSink starts listening on (h, port).
func NewSink(h *netstack.Host, port uint16) (*Sink, error) {
	s := &Sink{host: h, port: port}
	_, err := h.Listen(port, func(c *netstack.Conn) netstack.Handlers {
		fs := &FlowStats{From: c.Remote}
		s.Flows = append(s.Flows, fs)
		return netstack.Handlers{
			OnData: func(c *netstack.Conn, n int, data []byte) {
				now := h.Scheduler().Now()
				if !fs.started {
					fs.started = true
					fs.First = now
				}
				fs.Last = now
				fs.Bytes += uint64(n)
				s.TotalBytes += uint64(n)
			},
			OnClose: func(c *netstack.Conn, err error) { fs.Closed = true },
		}
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ThroughputSample returns the per-flow goodput distribution in bits/s.
func (s *Sink) ThroughputSample() *stats.Sample {
	out := &stats.Sample{}
	for _, f := range s.Flows {
		if f.Bytes > 0 {
			out.Add(f.Throughput())
		}
	}
	return out
}

// Bulk is a netperf-style TCP bulk sender.
type Bulk struct {
	Conn *netstack.Conn
}

// Unbounded makes a bulk flow effectively infinite.
const Unbounded = 1 << 42

// StartBulk opens a TCP connection from h to dst and streams total
// synthetic bytes (use Unbounded for an open-ended flow). The connection
// closes after the last byte when total is bounded.
func StartBulk(h *netstack.Host, dst netstack.Endpoint, total int) *Bulk {
	b := &Bulk{}
	b.Conn = h.Dial(dst, netstack.Handlers{})
	b.Conn.WriteCount(total)
	if total < Unbounded {
		b.Conn.Close()
	}
	return b
}

// CBR is a constant-bit-rate UDP source.
type CBR struct {
	sock    *netstack.UDPSocket
	to      netstack.Endpoint
	payload int
	ticker  *vtime.Ticker
	Sent    uint64
}

// StartCBR sends payload-byte datagrams to dst at bps until stopped.
func StartCBR(h *netstack.Host, dst netstack.Endpoint, payload int, bps float64) (*CBR, error) {
	sock, err := h.OpenUDP(0, nil)
	if err != nil {
		return nil, err
	}
	c := &CBR{sock: sock, to: dst, payload: payload}
	interval := vtime.DurationOf(float64((payload+netstack.UDPHeader)*8) / bps)
	if interval < vtime.Microsecond {
		interval = vtime.Microsecond
	}
	c.ticker = vtime.NewTicker(h.Scheduler(), interval, func() {
		c.sock.SendTo(c.to, c.payload, nil)
		c.Sent++
	})
	c.ticker.Start()
	return c, nil
}

// Stop halts the source.
func (c *CBR) Stop() {
	c.ticker.Stop()
	c.sock.Close()
}
