package obs

// Sync/barrier profiling types. parcore's conservative loop and the fednet
// coordinator fill a DriveProfile (where the driver's wall-clock went);
// each shard fills a ShardProfile (where its wall-clock went, and how much
// of the granted lookahead it actually used). RunProfile is the flat JSON
// artifact the CLI writes for -profile-out.

import (
	"encoding/json"
	"fmt"
	"os"
)

// DriveProfile is the wall-clock breakdown of one conservative
// synchronization loop (parcore.Drive / DrivePaced), from the driver's
// point of view.
type DriveProfile struct {
	// BarrierWallNs is time in Exchange: flushing outboxes, applying
	// inboxes, and collecting bounds (the barrier itself).
	BarrierWallNs uint64 `json:"barrier_wall_ns"`
	// ComputeWallNs is time in Window calls: shards running events.
	ComputeWallNs uint64 `json:"compute_wall_ns"`
	// SerialWallNs is time in DrainPass rounds (zero/exhausted lookahead).
	SerialWallNs uint64 `json:"serial_wall_ns"`
	// IdleWallNs is pacing sleep: the loop idling so virtual time does not
	// outrun the wall (real-time runs only).
	IdleWallNs uint64 `json:"idle_wall_ns"`
	// FlushWallNs is the flush share of BarrierWallNs, when the transport
	// distinguishes it (the federated coordinator's flush round; the
	// in-process outbox moves).
	FlushWallNs uint64 `json:"flush_wall_ns"`
}

// Add accumulates q into p.
func (p *DriveProfile) Add(q DriveProfile) {
	p.BarrierWallNs += q.BarrierWallNs
	p.ComputeWallNs += q.ComputeWallNs
	p.SerialWallNs += q.SerialWallNs
	p.IdleWallNs += q.IdleWallNs
	p.FlushWallNs += q.FlushWallNs
}

// ShardProfile is one shard's wall-clock and lookahead-utilization
// breakdown across a run.
type ShardProfile struct {
	Shard int `json:"shard"`
	// Wall-clock per activity: flushing the outbox, waiting for inbound
	// messages (federated collector waits), applying inboxes, running
	// windows, and serial drain turns.
	FlushWallNs uint64 `json:"flush_wall_ns"`
	WaitWallNs  uint64 `json:"wait_wall_ns"`
	ApplyWallNs uint64 `json:"apply_wall_ns"`
	RunWallNs   uint64 `json:"run_wall_ns"`
	DrainWallNs uint64 `json:"drain_wall_ns"`
	// Windows counts windows granted to the shard; ActiveWindows those in
	// which it actually fired at least one event. Their ratio is the
	// shard's lookahead utilization: how often the granted horizon covered
	// real work rather than forced idling.
	Windows       uint64 `json:"windows"`
	ActiveWindows uint64 `json:"active_windows"`
	// EventsFired counts scheduler events fired during windows and drains.
	EventsFired uint64 `json:"events_fired"`
}

// LookaheadUtilization reports ActiveWindows/Windows (0 with no windows).
func (p ShardProfile) LookaheadUtilization() float64 {
	if p.Windows == 0 {
		return 0
	}
	return float64(p.ActiveWindows) / float64(p.Windows)
}

// Add accumulates q's counters into p (keeping p's Shard).
func (p *ShardProfile) Add(q ShardProfile) {
	p.FlushWallNs += q.FlushWallNs
	p.WaitWallNs += q.WaitWallNs
	p.ApplyWallNs += q.ApplyWallNs
	p.RunWallNs += q.RunWallNs
	p.DrainWallNs += q.DrainWallNs
	p.Windows += q.Windows
	p.ActiveWindows += q.ActiveWindows
	p.EventsFired += q.EventsFired
}

// RunProfile is the -profile-out artifact: one run's synchronization
// profile across the driver and every shard.
type RunProfile struct {
	Mode         string  `json:"mode"`  // "seq", "parallel", "fednet"
	Cores        int     `json:"cores"` // shard count (1 = sequential)
	WallMS       float64 `json:"wall_ms"`
	Windows      uint64  `json:"windows"`
	SerialRounds uint64  `json:"serial_rounds"`
	Messages     uint64  `json:"messages"`
	// SyncMode names the synchronization algebra ("adaptive" or "fixed";
	// empty in sequential mode). The grant columns summarize the effective
	// per-window grant spans the algebra handed out — under the fixed
	// algebra they degenerate to the static lookahead, under the adaptive
	// one they show how far past it the queue horizon let shards run.
	SyncMode    string  `json:"sync_mode,omitempty"`
	GrantMinMS  float64 `json:"grant_min_ms,omitempty"`
	GrantMeanMS float64 `json:"grant_mean_ms,omitempty"`
	GrantMaxMS  float64 `json:"grant_max_ms,omitempty"`
	// Recoveries counts mid-run worker respawns under the federated
	// checkpoint/restart machinery; RecoveryWallMS is their total
	// wall-clock cost, round replay included.
	Recoveries     int            `json:"recoveries,omitempty"`
	RecoveryWallMS float64        `json:"recovery_wall_ms,omitempty"`
	Drive          DriveProfile   `json:"drive"`
	Shards         []ShardProfile `json:"shards,omitempty"`
}

// SyncLine renders the one-line synchronization summary every parallel and
// federated run report prints: window count and rate, serial rounds, the
// barrier's share of the run's wall clock, and the effective grant spread.
func (p *RunProfile) SyncLine() string {
	perSec := 0.0
	if p.WallMS > 0 {
		perSec = float64(p.Windows) / (p.WallMS / 1000)
	}
	// The barrier share is measured against the run's wall clock when the
	// caller filled it, else against the drive loop's own accounted time.
	wallNs := p.WallMS * 1e6
	if wallNs <= 0 {
		wallNs = float64(p.Drive.BarrierWallNs + p.Drive.ComputeWallNs +
			p.Drive.SerialWallNs + p.Drive.IdleWallNs)
	}
	share := 0.0
	if wallNs > 0 {
		share = 100 * float64(p.Drive.BarrierWallNs) / wallNs
	}
	s := fmt.Sprintf("%s, %d windows (%.0f windows/s), %d serial rounds, %d messages, barrier %.1f%% of wall",
		p.SyncMode, p.Windows, perSec, p.SerialRounds, p.Messages, share)
	if p.GrantMeanMS > 0 {
		s += fmt.Sprintf(", grant %.2f/%.2f/%.2f ms min/mean/max",
			p.GrantMinMS, p.GrantMeanMS, p.GrantMaxMS)
	}
	return s
}

// WriteFile writes the profile as indented JSON.
func (p *RunProfile) WriteFile(path string) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
