package obs

// Sync/barrier profiling types. parcore's conservative loop and the fednet
// coordinator fill a DriveProfile (where the driver's wall-clock went);
// each shard fills a ShardProfile (where its wall-clock went, and how much
// of the granted lookahead it actually used). RunProfile is the flat JSON
// artifact the CLI writes for -profile-out.

import (
	"encoding/json"
	"os"
)

// DriveProfile is the wall-clock breakdown of one conservative
// synchronization loop (parcore.Drive / DrivePaced), from the driver's
// point of view.
type DriveProfile struct {
	// BarrierWallNs is time in Exchange: flushing outboxes, applying
	// inboxes, and collecting bounds (the barrier itself).
	BarrierWallNs uint64 `json:"barrier_wall_ns"`
	// ComputeWallNs is time in Window calls: shards running events.
	ComputeWallNs uint64 `json:"compute_wall_ns"`
	// SerialWallNs is time in DrainPass rounds (zero/exhausted lookahead).
	SerialWallNs uint64 `json:"serial_wall_ns"`
	// IdleWallNs is pacing sleep: the loop idling so virtual time does not
	// outrun the wall (real-time runs only).
	IdleWallNs uint64 `json:"idle_wall_ns"`
	// FlushWallNs is the flush share of BarrierWallNs, when the transport
	// distinguishes it (the federated coordinator's flush round; the
	// in-process outbox moves).
	FlushWallNs uint64 `json:"flush_wall_ns"`
}

// Add accumulates q into p.
func (p *DriveProfile) Add(q DriveProfile) {
	p.BarrierWallNs += q.BarrierWallNs
	p.ComputeWallNs += q.ComputeWallNs
	p.SerialWallNs += q.SerialWallNs
	p.IdleWallNs += q.IdleWallNs
	p.FlushWallNs += q.FlushWallNs
}

// ShardProfile is one shard's wall-clock and lookahead-utilization
// breakdown across a run.
type ShardProfile struct {
	Shard int `json:"shard"`
	// Wall-clock per activity: flushing the outbox, waiting for inbound
	// messages (federated collector waits), applying inboxes, running
	// windows, and serial drain turns.
	FlushWallNs uint64 `json:"flush_wall_ns"`
	WaitWallNs  uint64 `json:"wait_wall_ns"`
	ApplyWallNs uint64 `json:"apply_wall_ns"`
	RunWallNs   uint64 `json:"run_wall_ns"`
	DrainWallNs uint64 `json:"drain_wall_ns"`
	// Windows counts windows granted to the shard; ActiveWindows those in
	// which it actually fired at least one event. Their ratio is the
	// shard's lookahead utilization: how often the granted horizon covered
	// real work rather than forced idling.
	Windows       uint64 `json:"windows"`
	ActiveWindows uint64 `json:"active_windows"`
	// EventsFired counts scheduler events fired during windows and drains.
	EventsFired uint64 `json:"events_fired"`
}

// LookaheadUtilization reports ActiveWindows/Windows (0 with no windows).
func (p ShardProfile) LookaheadUtilization() float64 {
	if p.Windows == 0 {
		return 0
	}
	return float64(p.ActiveWindows) / float64(p.Windows)
}

// Add accumulates q's counters into p (keeping p's Shard).
func (p *ShardProfile) Add(q ShardProfile) {
	p.FlushWallNs += q.FlushWallNs
	p.WaitWallNs += q.WaitWallNs
	p.ApplyWallNs += q.ApplyWallNs
	p.RunWallNs += q.RunWallNs
	p.DrainWallNs += q.DrainWallNs
	p.Windows += q.Windows
	p.ActiveWindows += q.ActiveWindows
	p.EventsFired += q.EventsFired
}

// RunProfile is the -profile-out artifact: one run's synchronization
// profile across the driver and every shard.
type RunProfile struct {
	Mode         string         `json:"mode"`  // "seq", "parallel", "fednet"
	Cores        int            `json:"cores"` // shard count (1 = sequential)
	WallMS       float64        `json:"wall_ms"`
	Windows      uint64         `json:"windows"`
	SerialRounds uint64         `json:"serial_rounds"`
	Messages     uint64         `json:"messages"`
	Drive        DriveProfile   `json:"drive"`
	Shards       []ShardProfile `json:"shards,omitempty"`
}

// WriteFile writes the profile as indented JSON.
func (p *RunProfile) WriteFile(path string) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
