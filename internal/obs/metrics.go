package obs

// Live metrics: a small atomic counter set served over HTTP in Prometheus
// text format (GET /metrics) and as flat JSON (GET /metrics.json), stdlib
// only. The coordinator and every federated worker can each bind one; a
// nil *Metrics disables every update site, mirroring the Tracer pattern.

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// Metrics is a process's live emulation gauges and counters. All fields
// update atomically; the HTTP handler snapshots them on demand.
type Metrics struct {
	Role  string // "coordinator", "worker", "local"
	Shard int    // -1 for the coordinator / sequential mode

	start time.Time

	windows      atomic.Uint64 // parallel windows completed
	serialRounds atomic.Uint64 // serial drain rounds completed
	messages     atomic.Uint64 // cross-shard messages exchanged
	vtimeNs      atomic.Int64  // emulation virtual clock
	lagNs        atomic.Int64  // wall clock minus pacing deadline (real-time runs)

	frames atomic.Uint64 // data-plane frames written
	bytes  atomic.Uint64 // data-plane bytes written (incl. framing)

	ingressPkts  atomic.Uint64 // gateway: real datagrams admitted
	ingressBytes atomic.Uint64
	egressPkts   atomic.Uint64 // gateway: real datagrams emitted
	egressBytes  atomic.Uint64
	gatewayDrops atomic.Uint64 // gateway: oversize + unmapped + queue drops
}

// NewMetrics returns an enabled metrics set.
func NewMetrics(role string, shard int) *Metrics {
	return &Metrics{Role: role, Shard: shard, start: time.Now()}
}

// AddWindows bumps the completed-window counter.
func (m *Metrics) AddWindows(n uint64) {
	if m != nil {
		m.windows.Add(n)
	}
}

// AddSerialRounds bumps the serial drain-round counter.
func (m *Metrics) AddSerialRounds(n uint64) {
	if m != nil {
		m.serialRounds.Add(n)
	}
}

// SetMessages sets the cumulative cross-shard message count.
func (m *Metrics) SetMessages(n uint64) {
	if m != nil {
		m.messages.Store(n)
	}
}

// SetVTime publishes the emulation's virtual clock.
func (m *Metrics) SetVTime(ns int64) {
	if m != nil {
		m.vtimeNs.Store(ns)
	}
}

// SetLag publishes the pacing lag: wall clock minus the virtual deadline's
// wall mapping. Positive = the emulation is behind real time.
func (m *Metrics) SetLag(ns int64) {
	if m != nil {
		m.lagNs.Store(ns)
	}
}

// SetPlane publishes the data-plane frame/byte counters.
func (m *Metrics) SetPlane(frames, bytes uint64) {
	if m != nil {
		m.frames.Store(frames)
		m.bytes.Store(bytes)
	}
}

// SetGateway publishes live-edge gateway counters.
func (m *Metrics) SetGateway(inPkts, inBytes, outPkts, outBytes, drops uint64) {
	if m != nil {
		m.ingressPkts.Store(inPkts)
		m.ingressBytes.Store(inBytes)
		m.egressPkts.Store(outPkts)
		m.egressBytes.Store(outBytes)
		m.gatewayDrops.Store(drops)
	}
}

// snapshot flattens the metric set for both export formats.
func (m *Metrics) snapshot() map[string]float64 {
	return map[string]float64{
		"modelnet_uptime_seconds":          time.Since(m.start).Seconds(),
		"modelnet_windows_total":           float64(m.windows.Load()),
		"modelnet_serial_rounds_total":     float64(m.serialRounds.Load()),
		"modelnet_messages_total":          float64(m.messages.Load()),
		"modelnet_vtime_seconds":           float64(m.vtimeNs.Load()) / 1e9,
		"modelnet_clock_lag_seconds":       float64(m.lagNs.Load()) / 1e9,
		"modelnet_plane_frames_total":      float64(m.frames.Load()),
		"modelnet_plane_bytes_total":       float64(m.bytes.Load()),
		"modelnet_gateway_ingress_packets": float64(m.ingressPkts.Load()),
		"modelnet_gateway_ingress_bytes":   float64(m.ingressBytes.Load()),
		"modelnet_gateway_egress_packets":  float64(m.egressPkts.Load()),
		"modelnet_gateway_egress_bytes":    float64(m.egressBytes.Load()),
		"modelnet_gateway_dropped_total":   float64(m.gatewayDrops.Load()),
	}
}

// metricHelp documents the Prometheus exposition.
var metricHelp = map[string]string{
	"modelnet_uptime_seconds":          "seconds since the metrics endpoint came up",
	"modelnet_windows_total":           "parallel synchronization windows completed",
	"modelnet_serial_rounds_total":     "serial drain rounds completed",
	"modelnet_messages_total":          "cross-shard tunnel messages exchanged",
	"modelnet_vtime_seconds":           "emulation virtual clock",
	"modelnet_clock_lag_seconds":       "wall clock minus pacing deadline (positive = behind)",
	"modelnet_plane_frames_total":      "data-plane frames written",
	"modelnet_plane_bytes_total":       "data-plane bytes written including framing",
	"modelnet_gateway_ingress_packets": "real datagrams admitted by the live edge gateway",
	"modelnet_gateway_ingress_bytes":   "real bytes admitted by the live edge gateway",
	"modelnet_gateway_egress_packets":  "real datagrams emitted by the live edge gateway",
	"modelnet_gateway_egress_bytes":    "real bytes emitted by the live edge gateway",
	"modelnet_gateway_dropped_total":   "gateway drops (oversize + unmapped + queue-full)",
}

// ServeHTTP renders /metrics (Prometheus text, gauge-typed with a
// role/shard label) and /metrics.json (flat JSON).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := m.snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	if r.URL.Path == "/metrics.json" {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\n  %q: %q,\n  %q: %d", "role", m.Role, "shard", m.Shard)
		for _, n := range names {
			fmt.Fprintf(w, ",\n  %q: %g", n, snap[n])
		}
		fmt.Fprint(w, "\n}\n")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, n := range names {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s{role=%q,shard=\"%d\"} %g\n",
			n, metricHelp[n], n, n, m.Role, m.Shard, snap[n])
	}
}

// Serve binds addr (host:port; port 0 picks one) and serves the metrics
// endpoint until the returned closer runs. It reports the bound address.
func (m *Metrics) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: m}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), srv.Close, nil
}
