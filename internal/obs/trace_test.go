package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// samplePacket returns a descriptor with a mode-invariant trace ID, as the
// emulator would mint at injection.
func samplePacket(tr *Tracer, src, dst pipes.VN, size int) *pipes.Packet {
	return &pipes.Packet{
		Src: src, Dst: dst, Size: size,
		Trace: tr.NextTID(src),
		Route: []pipes.ID{3},
	}
}

func recordSample(tr *Tracer) {
	p1 := samplePacket(tr, 0, 5, 600)
	p2 := samplePacket(tr, 1, 6, 1200)
	tr.PipeEnqueue(vtime.Time(10), 3, p1)
	tr.PipeEnqueue(vtime.Time(12), 3, p2)
	tr.PipeDequeue(vtime.Time(20), 3, p1)
	tr.PipeDrop(vtime.Time(22), 3, p2, pipes.DropBacklog)
	tr.Deliver(vtime.Time(30), p1)
	tr.DynStep(vtime.Time(40), 7)
	tr.Reroute(vtime.Time(41))
	tr.Unreachable(vtime.Time(50), 2, 9, 100, tr.NextTID(2))
	tr.Handoff(vtime.Time(60), 1, 3, p1)
	tr.PhysDrop(vtime.Time(61), PhysNICRx, 0, 4, 8, 700)
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	recordSample(tr) // must not panic
	if tr.Len() != 0 || len(tr.Events()) != 0 {
		t.Fatal("nil tracer recorded events")
	}
	if got := tr.NextTID(4); got != 0 {
		t.Fatalf("nil tracer minted TID %d", got)
	}
}

// TestTracerDisabledZeroAlloc pins the zero-cost-when-disabled contract:
// every hook on a nil tracer must be allocation-free.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	pkt := &pipes.Packet{Src: 1, Dst: 2, Size: 100, Route: []pipes.ID{0}}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = tr.NextTID(1)
		tr.PipeEnqueue(0, 0, pkt)
		tr.PipeDequeue(0, 0, pkt)
		tr.PipeDrop(0, 0, pkt, pipes.DropBacklog)
		tr.Deliver(0, pkt)
		tr.DynStep(0, 1)
		tr.Reroute(0)
		tr.Unreachable(0, 1, 2, 100, 0)
		tr.Handoff(0, 1, 0, pkt)
		tr.PhysDrop(0, PhysCPU, 0, 1, 2, 100)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs per run", allocs)
	}
}

func TestTracerTIDsAndEvents(t *testing.T) {
	tr := NewTracer(2)
	if !tr.Enabled() {
		t.Fatal("tracer not enabled")
	}
	if tid := tr.NextTID(3); tid != 3<<32|1 {
		t.Fatalf("first TID for src 3: got %#x, want %#x", tid, uint64(3<<32|1))
	}
	if tid := tr.NextTID(3); tid != 3<<32|2 {
		t.Fatalf("second TID for src 3: got %#x", tid)
	}
	if tid := tr.NextTID(0); tid != 1 {
		t.Fatalf("first TID for src 0: got %#x", tid)
	}
	recordSample(tr)
	evs := tr.Events()
	if len(evs) != tr.Len() || len(evs) == 0 {
		t.Fatalf("Events/Len mismatch: %d vs %d", len(evs), tr.Len())
	}
	for i, ev := range evs {
		if ev.Shard != 2 {
			t.Fatalf("event %d: shard %d, want 2", i, ev.Shard)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d: seq %d", i, ev.Seq)
		}
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset left events behind")
	}
	tr.DynStep(1, 2)
	if tr.Len() != 1 {
		t.Fatal("tracer dead after Reset")
	}
}

// TestTracerBlockSpill exercises the pooled-buffer path past one block.
func TestTracerBlockSpill(t *testing.T) {
	tr := NewTracer(0)
	n := blockEvents*2 + 17
	for i := 0; i < n; i++ {
		tr.DynStep(vtime.Time(i), i)
	}
	evs := tr.Events()
	if len(evs) != n {
		t.Fatalf("recorded %d events, want %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.VT != int64(i) || ev.Seq != uint64(i) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	tr := NewTracer(1)
	recordSample(tr)
	trace := Merge(tr)
	canon := trace.Canonical()
	for _, ev := range canon {
		if !ev.Kind.Canonical() {
			t.Fatalf("non-canonical kind %v in canonical stream", ev.Kind)
		}
	}
	// Handoff and phys-drop were recorded but must not reach canonical.
	if nAll, nCanon := len(trace.Events), len(canon); nAll-nCanon != 2 {
		t.Fatalf("expected exactly 2 non-canonical events, have %d of %d", nAll-nCanon, nAll)
	}
	b := trace.CanonicalBytes()
	dec, err := DecodeCanonical(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Events) != len(canon) {
		t.Fatalf("decoded %d events, want %d", len(dec.Events), len(canon))
	}
	for i := range canon {
		want := canon[i]
		// Merge metadata does not survive canonical bytes: the shard is
		// gone and the seq is just the record's position in the stream.
		want.Shard, want.Seq = 0, uint64(i)
		if dec.Events[i] != want {
			t.Fatalf("event %d: decoded %+v, want %+v", i, dec.Events[i], want)
		}
	}
	if !bytes.Equal(b, dec.CanonicalBytes()) {
		t.Fatal("re-encoding decoded trace changed bytes")
	}
	if _, err := DecodeCanonical(b[:len(b)-1]); err == nil {
		t.Fatal("truncated canonical trace decoded cleanly")
	}
	if _, err := DecodeCanonical([]byte("NOTATRACE")); err == nil {
		t.Fatal("garbage decoded cleanly")
	}
}

// TestCanonicalShardIndependence pins the core property: the same logical
// events recorded by different shards in different orders canonicalize to
// the same bytes.
func TestCanonicalShardIndependence(t *testing.T) {
	one := NewTracer(-1)
	recordSample(one)
	// Replay the same logical history split across two shards, in a
	// different interleave. TIDs are minted per source, so mint in the
	// same per-source order.
	a, b := NewTracer(0), NewTracer(1)
	pa := &pipes.Packet{Src: 0, Dst: 5, Size: 600, Trace: a.NextTID(0), Route: []pipes.ID{3}}
	pb := &pipes.Packet{Src: 1, Dst: 6, Size: 1200, Trace: b.NextTID(1), Route: []pipes.ID{3}}
	b.PipeDrop(vtime.Time(22), 3, pb, pipes.DropBacklog)
	b.PipeEnqueue(vtime.Time(12), 3, pb)
	a.PipeEnqueue(vtime.Time(10), 3, pa)
	a.PipeDequeue(vtime.Time(20), 3, pa)
	a.Deliver(vtime.Time(30), pa)
	a.DynStep(vtime.Time(40), 7)
	a.Reroute(vtime.Time(41))
	b.Unreachable(vtime.Time(50), 2, 9, 100, b.NextTID(2))
	// Different deployment noise: a handoff on one shard only.
	a.Handoff(vtime.Time(33), 1, 3, pa)
	if !bytes.Equal(Merge(one).CanonicalBytes(), Merge(a, b).CanonicalBytes()) {
		t.Fatal("canonical bytes differ between 1-shard and 2-shard recordings of the same history")
	}
}

func TestWriteJSONLAndChrome(t *testing.T) {
	tr := NewTracer(0)
	recordSample(tr)
	trace := Merge(tr)

	var jl bytes.Buffer
	if err := trace.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if len(lines) != len(trace.Events) {
		t.Fatalf("JSONL has %d lines for %d events", len(lines), len(trace.Events))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if _, ok := m["kind_name"]; !ok {
			t.Fatalf("line %d: no kind_name: %s", i, ln)
		}
	}

	var ch bytes.Buffer
	if err := trace.WriteChrome(&ch); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ch.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome export has no events")
	}
	sawComplete := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			sawComplete = true
		}
	}
	if !sawComplete {
		t.Fatal("Chrome export has no complete (pipe transit) events")
	}
}

func TestWriteFileDispatch(t *testing.T) {
	tr := NewTracer(0)
	recordSample(tr)
	trace := Merge(tr)
	dir := t.TempDir()

	bin := dir + "/trace.bin"
	if err := trace.WriteFile(bin); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCanonical(raw)
	if err != nil || len(dec.Events) == 0 {
		t.Fatalf("binary round-trip: %v (%d events)", err, len(dec.Events))
	}

	for _, name := range []string{"trace.json", "trace.jsonl"} {
		p := dir + "/" + name
		if err := trace.WriteFile(p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFromEventsOrdering(t *testing.T) {
	evs := []Event{
		{VT: 5, Shard: 1, Seq: 0, Kind: KindDeliver},
		{VT: 5, Shard: 0, Seq: 2, Kind: KindDequeue},
		{VT: 1, Shard: 2, Seq: 9, Kind: KindEnqueue},
		{VT: 5, Shard: 0, Seq: 1, Kind: KindEnqueue},
	}
	tr := FromEvents(evs)
	want := []int64{1, 5, 5, 5}
	for i, ev := range tr.Events {
		if ev.VT != want[i] {
			t.Fatalf("event %d: VT %d, want %d", i, ev.VT, want[i])
		}
	}
	if tr.Events[1].Seq != 1 || tr.Events[2].Seq != 2 || tr.Events[3].Shard != 1 {
		t.Fatalf("(vtime, shard, seq) merge order violated: %+v", tr.Events)
	}
}
