// Package obs is the observability layer: deterministic virtual-time
// packet tracing, sync/barrier wall-clock profiling, and a live metrics
// endpoint, shared by every execution mode.
//
// Three pillars:
//
//   - Tracing (trace.go). A per-shard Tracer records pipe
//     enqueue/dequeue/drop, delivery, dynamics, reroute, handoff, and
//     physical-drop events stamped in virtual nanoseconds. A nil *Tracer is
//     a disabled tracer — every hook is a single nil check, so the hot path
//     pays nothing when tracing is off. Per-shard tracers merge into a
//     Trace in deterministic (VT, Shard, Seq) order; the canonical binary
//     encoding keeps only mode-invariant content and is byte-identical
//     across sequential, in-process parallel, and federated runs of the
//     same scenario. Exports: canonical binary, JSONL, and Chrome
//     trace-event JSON (chrome://tracing, Perfetto).
//
//   - Profiling (profile.go). DriveProfile splits the conservative loop's
//     wall time into barrier-wait, compute, serial drain, pacing idle, and
//     flush; ShardProfile does the same per shard and tracks lookahead
//     utilization (windows in which the shard actually fired events).
//     RunProfile is the -profile-out JSON artifact.
//
//   - Metrics (metrics.go). Metrics is an atomic counter set served over
//     HTTP (-metrics-listen) as Prometheus text at /metrics and flat JSON
//     at /metrics.json: window rate, virtual clock, pacing lag, data-plane
//     frame/byte counters, and live-edge gateway traffic.
//
// The package depends only on pipes and vtime; emucore, parcore, fednet,
// and the CLI layer hooks on top of it.
package obs
