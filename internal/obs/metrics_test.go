package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
)

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.AddWindows(1)
	m.AddSerialRounds(1)
	m.SetMessages(1)
	m.SetVTime(1)
	m.SetLag(1)
	m.SetPlane(1, 1)
	m.SetGateway(1, 1, 1, 1, 1) // must not panic
}

func TestMetricsServe(t *testing.T) {
	m := NewMetrics("worker", 3)
	m.AddWindows(7)
	m.AddSerialRounds(2)
	m.SetMessages(41)
	m.SetVTime(1_500_000_000)
	m.SetPlane(10, 2048)
	m.SetGateway(5, 500, 4, 400, 1)

	addr, closeFn, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn() //nolint:errcheck

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		`modelnet_windows_total{role="worker",shard="3"} 7`,
		`modelnet_serial_rounds_total{role="worker",shard="3"} 2`,
		`modelnet_messages_total{role="worker",shard="3"} 41`,
		`modelnet_vtime_seconds{role="worker",shard="3"} 1.5`,
		`modelnet_plane_bytes_total{role="worker",shard="3"} 2048`,
		`modelnet_gateway_ingress_packets{role="worker",shard="3"} 5`,
		"# HELP modelnet_windows_total",
		"# TYPE modelnet_windows_total gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v\n%s", err, body)
	}
	if doc["role"] != "worker" || doc["shard"] != float64(3) {
		t.Fatalf("/metrics.json identity wrong: %v", doc)
	}
	if doc["modelnet_windows_total"] != float64(7) {
		t.Fatalf("/metrics.json windows = %v", doc["modelnet_windows_total"])
	}
}

func TestProfileAggregation(t *testing.T) {
	var d DriveProfile
	d.Add(DriveProfile{BarrierWallNs: 10, ComputeWallNs: 20, SerialWallNs: 5, IdleWallNs: 2, FlushWallNs: 4})
	d.Add(DriveProfile{BarrierWallNs: 1, ComputeWallNs: 2, FlushWallNs: 1})
	if d.BarrierWallNs != 11 || d.ComputeWallNs != 22 || d.SerialWallNs != 5 || d.IdleWallNs != 2 || d.FlushWallNs != 5 {
		t.Fatalf("DriveProfile.Add: %+v", d)
	}

	s := ShardProfile{Shard: 2}
	s.Add(ShardProfile{Shard: 9, Windows: 10, ActiveWindows: 4, EventsFired: 100, RunWallNs: 7})
	if s.Shard != 2 {
		t.Fatalf("ShardProfile.Add overwrote the shard id: %+v", s)
	}
	if got := s.LookaheadUtilization(); got != 0.4 {
		t.Fatalf("lookahead utilization %v, want 0.4", got)
	}
	if (ShardProfile{}).LookaheadUtilization() != 0 {
		t.Fatal("empty profile utilization not 0")
	}

	rp := RunProfile{Mode: "parallel", Cores: 2, Drive: d, Shards: []ShardProfile{s}}
	path := t.TempDir() + "/profile.json"
	if err := rp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back RunProfile
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mode != "parallel" || back.Cores != 2 || back.Drive != d || len(back.Shards) != 1 || back.Shards[0] != s {
		t.Fatalf("profile round-trip mismatch: %+v", back)
	}
}
