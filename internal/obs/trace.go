package obs

// Virtual-time packet tracing. A Tracer collects per-shard event records
// with nil-receiver-safe hook methods (a disabled trace is a nil *Tracer:
// every record call is a single predictable branch and zero allocations).
// Traces from all shards merge into a Trace, whose canonical binary
// encoding is byte-identical across the sequential, in-process parallel,
// and federated execution modes for the same scenario.
//
// Canonicality. Two things about a record are mode-dependent: which shard
// recorded it and in what local order (a packet's pipe events all happen on
// the pipe's owning shard, but shard numbering and interleave differ by
// mode and core count). Everything else — the virtual timestamp, the event
// kind, the pipe, the packet identity, and the packet's src/dst/size — is a
// property of the emulated network, not of the deployment. The canonical
// encoding therefore serializes only the mode-invariant fields and orders
// records by their full content key; Shard and Seq survive in the merged
// in-memory Trace (and the JSONL export) as diagnostics but never reach
// canonical bytes. Packet identity is Packet.Trace, a mode-invariant ID
// minted at injection (per-source injection order is the same in every
// mode), because Packet.Seq embeds the injecting shard and cannot agree
// across core counts.
//
// The contract inherits the existing determinism contract's precondition:
// modes agree under profiles where emulation itself is deterministic across
// deployments (the ideal profile; physical-admission drops are per-core
// wall effects and are recorded as non-canonical KindPhysDrop events).

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"modelnet/internal/pipes"
	"modelnet/internal/vtime"
)

// Kind is a trace event type.
type Kind uint8

// Event kinds. The first six are canonical (mode-invariant); KindHandoff
// and KindPhysDrop describe the deployment, not the emulated network, and
// are excluded from canonical bytes.
const (
	KindEnqueue  Kind = 1 // packet accepted into a pipe queue (VT = entry time)
	KindDrop     Kind = 2 // packet dropped (Arg = pipes.DropReason; Pipe = -1 off-pipe)
	KindDequeue  Kind = 3 // packet exited a pipe (VT = exact exit time)
	KindDeliver  Kind = 4 // delivery completed at the destination VN
	KindDynStep  Kind = 5 // link-dynamics step applied (Pipe = link, TID = step ordinal)
	KindReroute  Kind = 6 // route tables rebuilt (TID = reroute ordinal)
	KindHandoff  Kind = 7 // cross-core handoff emitted (Dst = target shard); non-canonical
	KindPhysDrop Kind = 8 // physical admission drop (Arg = Phys* site); non-canonical
)

// String names a kind for the JSONL and Chrome exports.
func (k Kind) String() string {
	switch k {
	case KindEnqueue:
		return "enqueue"
	case KindDrop:
		return "drop"
	case KindDequeue:
		return "dequeue"
	case KindDeliver:
		return "deliver"
	case KindDynStep:
		return "dyn-step"
	case KindReroute:
		return "reroute"
	case KindHandoff:
		return "handoff"
	case KindPhysDrop:
		return "phys-drop"
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Canonical reports whether events of this kind appear in canonical bytes.
func (k Kind) Canonical() bool { return k >= KindEnqueue && k <= KindReroute }

// Physical-admission drop sites (Event.Arg for KindPhysDrop).
const (
	PhysNICRx     uint8 = 1 // injection rejected by NIC backlog
	PhysCPU       uint8 = 2 // injection rejected by CPU backlog
	PhysTunnelTx  uint8 = 3 // cross-core send rejected by NIC backlog
	PhysTunnelRx  uint8 = 4 // cross-core receive rejected by NIC backlog
	PhysTunnelCPU uint8 = 5 // cross-core receive rejected by CPU backlog
	PhysEdgeTx    uint8 = 6 // final-hop emission rejected by NIC backlog
)

// PhysSiteString names a physical drop site.
func PhysSiteString(site uint8) string {
	switch site {
	case PhysNICRx:
		return "nic-rx"
	case PhysCPU:
		return "cpu"
	case PhysTunnelTx:
		return "tunnel-tx"
	case PhysTunnelRx:
		return "tunnel-rx"
	case PhysTunnelCPU:
		return "tunnel-cpu"
	case PhysEdgeTx:
		return "edge-tx"
	}
	return fmt.Sprintf("phys-%d", site)
}

// Event is one trace record. VT, Kind, Arg, Pipe, Src, Dst, Size, and TID
// are canonical content; Shard and Seq are merge metadata (which shard
// recorded it, in what local order) kept for diagnostics.
type Event struct {
	VT    int64  `json:"vt"`            // virtual time, ns
	TID   uint64 `json:"tid,omitempty"` // packet trace ID (src<<32 | per-src ordinal), or step/reroute ordinal
	Seq   uint64 `json:"seq"`           // per-shard record ordinal
	Shard int32  `json:"shard"`         // recording shard (-1 = sequential)
	Pipe  int32  `json:"pipe"`          // pipe/link ID, -1 when off-pipe
	Src   int32  `json:"src"`           // source VN, -1 for non-packet events
	Dst   int32  `json:"dst"`           // destination VN (KindHandoff: target shard)
	Size  int32  `json:"size"`          // packet size in bytes
	Kind  Kind   `json:"kind"`          // event type
	Arg   uint8  `json:"arg,omitempty"` // drop reason / phys site
}

// canonRecordBytes is the fixed canonical wire size of one event:
// VT i64, Kind u8, Arg u8, Pipe i32, Src i32, Dst i32, Size i32, TID u64.
const canonRecordBytes = 8 + 1 + 1 + 4 + 4 + 4 + 4 + 8

// canonMagic heads the canonical binary trace format.
const canonMagic = "MNTRACE1"

// blockEvents sizes one pooled tracer buffer block.
const blockEvents = 4096

// Tracer records one shard's events. The zero *Tracer (nil) is a valid
// disabled tracer: every method returns immediately. Buffers grow in
// fixed-size blocks recycled by Reset, so a long run never copies recorded
// events and a reused tracer allocates nothing in steady state.
type Tracer struct {
	shard  int32
	seq    uint64
	perSrc []uint64 // per-source injection ordinals for NextTID
	dyn    uint64   // dynamics-step ordinal
	rer    uint64   // reroute ordinal
	blocks [][]Event
	cur    []Event
	pool   [][]Event
}

// NewTracer returns an enabled tracer recording as the given shard
// (-1 for the sequential mode).
func NewTracer(shard int) *Tracer { return &Tracer{shard: int32(shard)} }

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := len(t.cur)
	for _, b := range t.blocks {
		n += len(b)
	}
	return n
}

// push appends one record, stamping shard and local order.
func (t *Tracer) push(ev Event) {
	ev.Shard = t.shard
	ev.Seq = t.seq
	t.seq++
	if len(t.cur) == cap(t.cur) {
		if t.cur != nil {
			t.blocks = append(t.blocks, t.cur)
		}
		if n := len(t.pool); n > 0 {
			t.cur = t.pool[n-1][:0]
			t.pool = t.pool[:n-1]
		} else {
			t.cur = make([]Event, 0, blockEvents)
		}
	}
	t.cur = append(t.cur, ev)
}

// NextTID mints the next mode-invariant trace ID for a packet injected by
// src: src in the high 32 bits, the per-source injection ordinal (from 1)
// in the low 32. Injection order per source VN is identical in every
// execution mode, so the IDs agree across modes. A nil tracer returns 0.
func (t *Tracer) NextTID(src pipes.VN) uint64 {
	if t == nil {
		return 0
	}
	if int(src) >= len(t.perSrc) {
		grown := make([]uint64, int(src)+1)
		copy(grown, t.perSrc)
		t.perSrc = grown
	}
	t.perSrc[src]++
	return uint64(uint32(src))<<32 | (t.perSrc[src] & 0xffffffff)
}

// PipeEnqueue records a packet accepted into a pipe at virtual time at.
func (t *Tracer) PipeEnqueue(at vtime.Time, pipe pipes.ID, pkt *pipes.Packet) {
	if t == nil {
		return
	}
	t.push(Event{VT: int64(at), Kind: KindEnqueue, Pipe: int32(pipe), TID: pkt.Trace,
		Src: int32(pkt.Src), Dst: int32(pkt.Dst), Size: int32(pkt.Size)})
}

// PipeDrop records a packet dropped by a pipe's admission at virtual time at.
func (t *Tracer) PipeDrop(at vtime.Time, pipe pipes.ID, pkt *pipes.Packet, reason pipes.DropReason) {
	if t == nil {
		return
	}
	t.push(Event{VT: int64(at), Kind: KindDrop, Arg: uint8(reason), Pipe: int32(pipe), TID: pkt.Trace,
		Src: int32(pkt.Src), Dst: int32(pkt.Dst), Size: int32(pkt.Size)})
}

// PipeDequeue records a packet exiting a pipe at its exact virtual exit time.
func (t *Tracer) PipeDequeue(at vtime.Time, pipe pipes.ID, pkt *pipes.Packet) {
	if t == nil {
		return
	}
	t.push(Event{VT: int64(at), Kind: KindDequeue, Pipe: int32(pipe), TID: pkt.Trace,
		Src: int32(pkt.Src), Dst: int32(pkt.Dst), Size: int32(pkt.Size)})
}

// Deliver records a completed delivery at the destination VN.
func (t *Tracer) Deliver(at vtime.Time, pkt *pipes.Packet) {
	if t == nil {
		return
	}
	t.push(Event{VT: int64(at), Kind: KindDeliver, Pipe: -1, TID: pkt.Trace,
		Src: int32(pkt.Src), Dst: int32(pkt.Dst), Size: int32(pkt.Size)})
}

// Unreachable records an injection rejected by route lookup (the
// DropUnreachable taxonomy slot), off-pipe.
func (t *Tracer) Unreachable(at vtime.Time, src, dst pipes.VN, size int, tid uint64) {
	if t == nil {
		return
	}
	t.push(Event{VT: int64(at), Kind: KindDrop, Arg: uint8(pipes.DropUnreachable), Pipe: -1, TID: tid,
		Src: int32(src), Dst: int32(dst), Size: int32(size)})
}

// DynStep records a link-dynamics step applied to a link.
func (t *Tracer) DynStep(at vtime.Time, link int) {
	if t == nil {
		return
	}
	t.dyn++
	t.push(Event{VT: int64(at), Kind: KindDynStep, Pipe: int32(link), TID: t.dyn, Src: -1, Dst: -1})
}

// Reroute records a route-table rebuild.
func (t *Tracer) Reroute(at vtime.Time) {
	if t == nil {
		return
	}
	t.rer++
	t.push(Event{VT: int64(at), Kind: KindReroute, Pipe: -1, TID: t.rer, Src: -1, Dst: -1})
}

// Handoff records a cross-core handoff toward target (non-canonical: the
// shard layout is a deployment property).
func (t *Tracer) Handoff(at vtime.Time, target int, pipe pipes.ID, pkt *pipes.Packet) {
	if t == nil {
		return
	}
	t.push(Event{VT: int64(at), Kind: KindHandoff, Pipe: int32(pipe), TID: pkt.Trace,
		Src: int32(pkt.Src), Dst: int32(target), Size: int32(pkt.Size)})
}

// PhysDrop records a physical admission drop at the given Phys* site
// (non-canonical: admission backlog is a per-core wall effect). Fields are
// explicit because injection-path drops happen before a descriptor exists.
func (t *Tracer) PhysDrop(at vtime.Time, site uint8, tid uint64, src, dst pipes.VN, size int) {
	if t == nil {
		return
	}
	t.push(Event{VT: int64(at), Kind: KindPhysDrop, Arg: site, Pipe: -1, TID: tid,
		Src: int32(src), Dst: int32(dst), Size: int32(size)})
}

// Events returns a flattened copy of the recorded events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.Len())
	for _, b := range t.blocks {
		out = append(out, b...)
	}
	return append(out, t.cur...)
}

// Reset discards recorded events, recycling the buffer blocks.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.pool = append(t.pool, t.blocks...)
	t.blocks = t.blocks[:0]
	if t.cur != nil {
		t.cur = t.cur[:0]
	}
	t.seq = 0
}

// Trace is a merged multi-shard trace, ordered by (VT, Shard, Seq).
type Trace struct {
	Events []Event
}

// Merge combines per-shard tracers into one Trace in deterministic
// (VT, Shard, Seq) order. Nil tracers are skipped.
func Merge(tracers ...*Tracer) *Trace {
	var evs []Event
	for _, t := range tracers {
		evs = append(evs, t.Events()...)
	}
	return FromEvents(evs)
}

// FromEvents builds a Trace from already-recorded events, taking ownership
// of the slice and sorting it into (VT, Shard, Seq) order.
func FromEvents(evs []Event) *Trace {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.VT != b.VT {
			return a.VT < b.VT
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	return &Trace{Events: evs}
}

// canonLess orders events by full canonical content, the only order every
// execution mode can agree on (per-shard Seq differs across core counts).
func canonLess(a, b *Event) bool {
	if a.VT != b.VT {
		return a.VT < b.VT
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Pipe != b.Pipe {
		return a.Pipe < b.Pipe
	}
	if a.TID != b.TID {
		return a.TID < b.TID
	}
	if a.Arg != b.Arg {
		return a.Arg < b.Arg
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.Size < b.Size
}

// Canonical returns the canonical events: the mode-invariant kinds, sorted
// by content.
func (t *Trace) Canonical() []Event {
	evs := make([]Event, 0, len(t.Events))
	for _, ev := range t.Events {
		if ev.Kind.Canonical() {
			evs = append(evs, ev)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return canonLess(&evs[i], &evs[j]) })
	return evs
}

// CanonicalBytes encodes the canonical events in the canonical binary
// format: an 8-byte magic, a u32 record count, then fixed 34-byte
// little-endian records of (VT, Kind, Arg, Pipe, Src, Dst, Size, TID).
// Byte-identical across execution modes for the same scenario.
func (t *Trace) CanonicalBytes() []byte {
	evs := t.Canonical()
	b := make([]byte, 0, len(canonMagic)+4+len(evs)*canonRecordBytes)
	b = append(b, canonMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(evs)))
	for i := range evs {
		ev := &evs[i]
		b = binary.LittleEndian.AppendUint64(b, uint64(ev.VT))
		b = append(b, uint8(ev.Kind), ev.Arg)
		b = binary.LittleEndian.AppendUint32(b, uint32(ev.Pipe))
		b = binary.LittleEndian.AppendUint32(b, uint32(ev.Src))
		b = binary.LittleEndian.AppendUint32(b, uint32(ev.Dst))
		b = binary.LittleEndian.AppendUint32(b, uint32(ev.Size))
		b = binary.LittleEndian.AppendUint64(b, ev.TID)
	}
	return b
}

// DecodeCanonical parses a canonical binary trace. Decoded events carry no
// shard/seq metadata (that is the point of the format).
func DecodeCanonical(b []byte) (*Trace, error) {
	if len(b) < len(canonMagic)+4 || string(b[:len(canonMagic)]) != canonMagic {
		return nil, fmt.Errorf("obs: not a canonical trace (bad magic)")
	}
	n := binary.LittleEndian.Uint32(b[len(canonMagic):])
	rest := b[len(canonMagic)+4:]
	if len(rest) != int(n)*canonRecordBytes {
		return nil, fmt.Errorf("obs: canonical trace: %d records declared, %d bytes of records", n, len(rest))
	}
	evs := make([]Event, n)
	for i := range evs {
		r := rest[i*canonRecordBytes:]
		evs[i] = Event{
			VT:   int64(binary.LittleEndian.Uint64(r)),
			Kind: Kind(r[8]),
			Arg:  r[9],
			Pipe: int32(binary.LittleEndian.Uint32(r[10:])),
			Src:  int32(binary.LittleEndian.Uint32(r[14:])),
			Dst:  int32(binary.LittleEndian.Uint32(r[18:])),
			Size: int32(binary.LittleEndian.Uint32(r[22:])),
			TID:  binary.LittleEndian.Uint64(r[26:]),
			Seq:  uint64(i),
		}
	}
	return &Trace{Events: evs}, nil
}

// jsonlEvent is the JSONL export record: the Event plus symbolic names.
type jsonlEvent struct {
	Event
	KindName string `json:"kind_name"`
	ArgName  string `json:"arg_name,omitempty"`
}

// argName resolves the symbolic Arg of an event.
func argName(ev *Event) string {
	switch ev.Kind {
	case KindDrop:
		return pipes.DropReason(ev.Arg).String()
	case KindPhysDrop:
		return PhysSiteString(ev.Arg)
	}
	return ""
}

// WriteJSONL writes the merged trace as one JSON object per line, in
// (VT, Shard, Seq) order, with shard/seq diagnostics included.
func (t *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range t.Events {
		ev := &t.Events[i]
		if err := enc.Encode(jsonlEvent{Event: *ev, KindName: ev.Kind.String(), ArgName: argName(ev)}); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event (chrome://tracing, Perfetto).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Chrome trace rows: pipes are threads of process 0, deliveries threads
// (per destination VN) of process 1, dynamics process 2.
const (
	chromePipes    = 0
	chromeDeliver  = 1
	chromeDynamics = 2
)

// WriteChrome writes the trace in the Chrome trace-event JSON format: each
// pipe transit (enqueue..dequeue of one packet) becomes a complete event on
// the pipe's row, drops and deliveries become instant events, dynamics
// steps and reroutes land on their own process row. Virtual nanoseconds map
// to trace microseconds with sub-us precision preserved as fractions.
func (t *Trace) WriteChrome(w io.Writer) error {
	type transit struct {
		vt int64
		ev *Event
	}
	open := map[[2]int64]transit{} // (pipe, tid) -> enqueue
	var out []chromeEvent
	us := func(vt int64) float64 { return float64(vt) / 1e3 }
	for i := range t.Events {
		ev := &t.Events[i]
		switch ev.Kind {
		case KindEnqueue:
			open[[2]int64{int64(ev.Pipe), int64(ev.TID)}] = transit{vt: ev.VT, ev: ev}
		case KindDequeue:
			key := [2]int64{int64(ev.Pipe), int64(ev.TID)}
			if tr, ok := open[key]; ok {
				delete(open, key)
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("pkt %d->%d", ev.Src, ev.Dst), Phase: "X",
					TS: us(tr.vt), Dur: us(ev.VT - tr.vt), PID: chromePipes, TID: int64(ev.Pipe),
					Args: map[string]any{"tid": ev.TID, "size": ev.Size},
				})
			}
		case KindDrop:
			out = append(out, chromeEvent{
				Name: "drop " + pipes.DropReason(ev.Arg).String(), Phase: "i", Scope: "t",
				TS: us(ev.VT), PID: chromePipes, TID: int64(ev.Pipe),
				Args: map[string]any{"tid": ev.TID, "src": ev.Src, "dst": ev.Dst},
			})
		case KindDeliver:
			out = append(out, chromeEvent{
				Name: "deliver", Phase: "i", Scope: "t",
				TS: us(ev.VT), PID: chromeDeliver, TID: int64(ev.Dst),
				Args: map[string]any{"tid": ev.TID, "src": ev.Src, "size": ev.Size},
			})
		case KindDynStep:
			out = append(out, chromeEvent{
				Name: "dyn-step", Phase: "i", Scope: "p",
				TS: us(ev.VT), PID: chromeDynamics, TID: int64(ev.Pipe),
			})
		case KindReroute:
			out = append(out, chromeEvent{
				Name: "reroute", Phase: "i", Scope: "p",
				TS: us(ev.VT), PID: chromeDynamics, TID: -1,
			})
		case KindHandoff:
			out = append(out, chromeEvent{
				Name: "handoff", Phase: "i", Scope: "t",
				TS: us(ev.VT), PID: chromePipes, TID: int64(ev.Pipe),
				Args: map[string]any{"tid": ev.TID, "shard": ev.Shard, "target": ev.Dst},
			})
		case KindPhysDrop:
			out = append(out, chromeEvent{
				Name: "phys-drop " + PhysSiteString(ev.Arg), Phase: "i", Scope: "t",
				TS: us(ev.VT), PID: chromePipes, TID: int64(ev.Pipe),
				Args: map[string]any{"tid": ev.TID},
			})
		}
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": out, "displayTimeUnit": "ns"})
}

// WriteFile writes the trace to path, choosing the format by extension:
// .json is Chrome trace-event, .jsonl is line-delimited JSON, anything
// else is the canonical binary format.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		err = t.WriteChrome(f)
	case ".jsonl":
		err = t.WriteJSONL(f)
	default:
		_, err = f.Write(t.CanonicalBytes())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
