// Package dynamics is the virtual-time link-dynamics engine: it schedules
// pipes.Params changes as first-class emulation events, implementing the
// paper's §4.3 "dynamic network characteristics" that pipes.SetParams
// exposes but nothing previously drove.
//
// A Spec describes what changes: per-link Profiles, each a sorted timeline
// of Steps (bandwidth, latency, loss, link down/up), optionally looping.
// Profiles come from three sources:
//
//   - trace replay (ParseTrace, the bundled LTE/satellite/wifi samples): a
//     recorded capacity trace replayed as stepped BandwidthBps+Latency,
//     cellular-emulator style;
//   - scripted steps (ParseScript): declarative fault-injection timelines
//     such as "3@2s loss=0.05; 3@5s down; 3@8s up";
//   - hand-built Specs, for tests and embedding.
//
// An Engine attaches a Spec to one emulator: Attach schedules every step of
// the first cycle up front, at absolute virtual times, before any workload
// event exists. Scheduler ties break by insertion order, so a step at time T
// fires before any same-time workload event — identically in sequential,
// in-process parallel, and federated runs, which each attach the same Spec
// to every shard the same way. Looping profiles reschedule one cycle at a
// time from a rollover event at each cycle boundary.
//
// Link failure sets Params.Down: the pipe blackholes new packets (counted
// as pipes.DropLinkDown) while in-flight packets drain on the schedule they
// were assigned on entry. With Spec.Reroute, every Down/Up step also
// schedules a route recomputation RerouteDelay later — the virtual-time
// stand-in for the reconvergence delay a routing protocol such as
// internal/routing's distance-vector implementation would exhibit; the
// recomputed tables are exactly the shortest-path tables DV converges to
// (routing.Converged checks that equivalence). Recomputation clones the
// topology, raises every down link's latency to routing.Infinity, and
// rebuilds the matrix table, so an unreachable destination deterministically
// routes into the down link and blackholes there rather than erroring.
//
// Conservative parallel synchronization must account for a trace lowering a
// cut pipe's latency below its initial value: Spec.FloorLatency reports the
// minimum latency a link can ever take under the spec, and
// parcore.ComputeSyncFloor derives shard lookahead from that floor rather
// than the initial latency (see Spec.LatencyFloorFunc).
package dynamics
