package dynamics

import (
	"fmt"
	"reflect"
	"testing"

	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// snapSpec is a deliberately awkward cursor workout: a looping trace profile
// (mid-cycle snapshots land between steps), a failure/recovery profile whose
// reconvergence delay pushes a reroute across its loop boundary, and a
// one-shot profile that is fully consumed before the snapshot.
func snapSpec() *Spec {
	bw := func(at vtime.Duration, mbps float64) Step {
		s := At(at)
		s.Bandwidth = mbps * 1e6
		return s
	}
	down := At(6 * vtime.Millisecond)
	down.Down = true
	up := At(8 * vtime.Millisecond)
	up.Up = true
	early := At(1 * vtime.Millisecond)
	early.Loss = 0.01
	return &Spec{
		Profiles: []Profile{
			{Link: 0, Steps: []Step{bw(0, 2), bw(4*vtime.Millisecond, 9)}, Loop: 10 * vtime.Millisecond},
			{Link: 1, Steps: []Step{down, up}, Loop: 10 * vtime.Millisecond},
			{Link: 2, Steps: []Step{early}},
		},
		Reroute:      true,
		RerouteDelay: 5 * vtime.Millisecond, // down@6 reroutes at 11: past the loop edge
	}
}

// paramsFingerprint renders every pipe's parameters plus the engine's
// observable state at the scheduler's current instant.
func paramsFingerprint(e *Engine) string {
	s := fmt.Sprintf("t=%v applied=%d reroutes=%d down=%v |", e.sched.Now(), e.Applied, e.Reroutes, e.downList())
	for id := 0; id < e.emu.NumPipes(); id++ {
		p := e.emu.Pipe(pipes.ID(id))
		if p == nil {
			continue
		}
		pr := p.Params()
		s += fmt.Sprintf(" %d:{%.0f %v %.3f %v}", id, pr.BandwidthBps, pr.Latency, pr.LossRate, pr.Down)
	}
	return s
}

// TestEngineSnapshotRestoreEquivalence is the satellite property test: run
// the spec partway (a mid-loop instant for every profile shape), snapshot
// the cursor, rebuild on a fresh scheduler + emulator carrying the same pipe
// parameters, and demand the two engines' observable timelines agree tick
// for tick through several further cycles.
func TestEngineSnapshotRestoreEquivalence(t *testing.T) {
	spec := snapSpec()
	for _, midMS := range []int{3, 5, 6, 7, 9, 10, 12} {
		mid := vtime.Time(midMS) * vtime.Time(vtime.Millisecond)
		g := topology.Line(2, attrs(8, 5))
		refEmu, refSched, _ := fixture(t, g)
		var refReroutes, gotReroutes []string
		ref, err := Attach(refSched, refEmu, spec)
		if err != nil {
			t.Fatal(err)
		}
		ref.OnReroute = func(down []topology.LinkID) {
			refReroutes = append(refReroutes, fmt.Sprintf("%v@%v", down, refSched.Now()))
		}
		refSched.RunUntil(mid)
		st, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}

		gotEmu, gotSched, _ := fixture(t, g)
		gotSched.RunUntil(mid)
		for id := 0; id < refEmu.NumPipes(); id++ {
			if p := refEmu.Pipe(pipes.ID(id)); p != nil {
				gotEmu.SetPipeParams(pipes.ID(id), p.Params())
			}
		}
		got, err := AttachRestored(gotSched, gotEmu, spec, st)
		if err != nil {
			t.Fatalf("mid=%v: restore: %v", mid, err)
		}
		preReroutes := len(refReroutes)
		got.OnReroute = func(down []topology.LinkID) {
			gotReroutes = append(gotReroutes, fmt.Sprintf("%v@%v", down, gotSched.Now()))
		}

		// Lockstep comparison at sub-step granularity over 3 more cycles.
		end := mid.Add(30 * vtime.Millisecond)
		for tick := mid; tick <= end; tick = tick.Add(500 * vtime.Microsecond) {
			refSched.RunUntil(tick)
			gotSched.RunUntil(tick)
			rf, gf := paramsFingerprint(ref), paramsFingerprint(got)
			if rf != gf {
				t.Fatalf("mid=%v: diverged at %v:\nref: %s\ngot: %s", mid, tick, rf, gf)
			}
		}
		if !reflect.DeepEqual(refReroutes[preReroutes:], gotReroutes) {
			t.Fatalf("mid=%v: reroute timelines diverge:\nref: %v\ngot: %v",
				mid, refReroutes[preReroutes:], gotReroutes)
		}
		// And the cursors agree going forward, too.
		rst, err1 := ref.Snapshot()
		gst, err2 := got.Snapshot()
		if err1 != nil || err2 != nil || !reflect.DeepEqual(rst, gst) {
			t.Fatalf("mid=%v: final cursors diverge: %+v vs %+v (%v %v)", mid, rst, gst, err1, err2)
		}
	}
}

func TestAttachRestoredRejectsBadState(t *testing.T) {
	spec := snapSpec()
	g := topology.Line(2, attrs(8, 5))
	emu, sched, _ := fixture(t, g)
	if _, err := AttachRestored(sched, emu, nil, EngineState{}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := AttachRestored(sched, emu, spec, EngineState{Bases: make([]vtime.Time, 1)}); err == nil {
		t.Error("base/profile count mismatch accepted")
	}
	bad := EngineState{
		Bases:           make([]vtime.Time, len(spec.Profiles)),
		PendingReroutes: []vtime.Time{0}, // not after the clock
	}
	sched.RunUntil(vtime.Time(5 * vtime.Millisecond))
	if _, err := AttachRestored(sched, emu, spec, bad); err == nil {
		t.Error("stale pending reroute accepted")
	}
	late := EngineState{Bases: make([]vtime.Time, len(spec.Profiles))}
	late.Bases[0] = vtime.Time(50 * vtime.Millisecond) // base after clock
	if _, err := AttachRestored(sched, emu, spec, late); err == nil {
		t.Error("future cycle base accepted")
	}
}
