package dynamics

import (
	"testing"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

func attrs(mbps, ms float64) topology.LinkAttrs {
	return topology.LinkAttrs{BandwidthBps: mbps * 1e6, LatencySec: ms * 1e-3, QueuePkts: 100}
}

// fixture builds a sequential emulator over g with a delivery recorder.
func fixture(t *testing.T, g *topology.Graph) (*emucore.Emulator, *vtime.Scheduler, map[pipes.VN]int) {
	t.Helper()
	sched := vtime.NewScheduler()
	b, err := bind.Bind(g, bind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := emucore.New(sched, g, b, nil, emucore.IdealProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[pipes.VN]int{}
	for v := 0; v < b.NumVNs(); v++ {
		v := pipes.VN(v)
		e.RegisterVN(v, func(*pipes.Packet) { got[v]++ })
	}
	return e, sched, got
}

func TestStepsApplyInOrder(t *testing.T) {
	g := topology.Line(1, attrs(8, 5))
	e, sched, _ := fixture(t, g)
	s1 := At(10 * vtime.Millisecond)
	s1.Bandwidth = 2e6
	s2 := At(20 * vtime.Millisecond)
	s2.Latency = 1 * vtime.Millisecond
	s2.Loss = 0.25
	spec := &Spec{Profiles: []Profile{{Link: 0, Steps: []Step{s1, s2}}}}
	eng, err := Attach(sched, e, spec)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(vtime.Time(15 * vtime.Millisecond))
	p := e.Pipe(0).Params()
	if p.BandwidthBps != 2e6 || p.Latency != 5*vtime.Millisecond {
		t.Fatalf("after step 1: %+v", p)
	}
	sched.RunUntil(vtime.Time(25 * vtime.Millisecond))
	p = e.Pipe(0).Params()
	// Unchanged fields persist across steps; changed ones take effect.
	if p.BandwidthBps != 2e6 || p.Latency != 1*vtime.Millisecond || p.LossRate != 0.25 {
		t.Fatalf("after step 2: %+v", p)
	}
	if eng.Applied != 2 {
		t.Errorf("applied %d steps", eng.Applied)
	}
}

func TestLoopReplays(t *testing.T) {
	g := topology.Line(1, attrs(8, 5))
	e, sched, _ := fixture(t, g)
	a := At(0)
	a.Bandwidth = 1e6
	b := At(5 * vtime.Millisecond)
	b.Bandwidth = 9e6
	spec := &Spec{Profiles: []Profile{{Link: 0, Steps: []Step{a, b}, Loop: 10 * vtime.Millisecond}}}
	eng, err := Attach(sched, e, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Three full cycles: 6 steps applied, parameters as of mid-cycle 3.
	sched.RunUntil(vtime.Time(27 * vtime.Millisecond))
	if eng.Applied != 6 {
		t.Errorf("applied %d steps over 3 cycles, want 6", eng.Applied)
	}
	if bw := e.Pipe(0).Params().BandwidthBps; bw != 9e6 {
		t.Errorf("bandwidth %v mid-cycle, want 9e6", bw)
	}
}

func TestDownBlackholesAndReroutes(t *testing.T) {
	// Square of routers, one client each: 0-1-2-3-0. VN0 -> VN2 initially
	// routes over one side; failing its first ring hop reroutes the long
	// way and traffic keeps flowing after reconvergence.
	g := topology.New()
	var routers [4]topology.NodeID
	for i := range routers {
		routers[i] = g.AddNode(topology.Stub, "")
	}
	for i := range routers {
		g.AddDuplex(routers[i], routers[(i+1)%4], attrs(100, 5))
	}
	for i := range routers {
		c := g.AddNode(topology.Client, "")
		g.AddDuplex(c, routers[i], attrs(10, 1))
	}
	e, sched, got := fixture(t, g)

	// Find the first ring hop VN0 -> VN2 uses, to fail it.
	route, ok := e.Binding().Table.Lookup(0, 2)
	if !ok || len(route) < 2 {
		t.Fatalf("no initial route: %v", route)
	}
	failLink := int(route[1]) // first ring pipe after the access hop

	down := At(100 * vtime.Millisecond)
	down.Down = true
	up := At(300 * vtime.Millisecond)
	up.Up = true
	spec := &Spec{
		Profiles:     []Profile{{Link: failLink, Steps: []Step{down, up}}},
		Reroute:      true,
		RerouteDelay: 20 * vtime.Millisecond,
	}
	eng, err := Attach(sched, e, spec)
	if err != nil {
		t.Fatal(err)
	}
	// One packet per 10ms from VN0 to VN2 for 500ms.
	for i := 0; i < 50; i++ {
		at := vtime.Time(i) * vtime.Time(10*vtime.Millisecond)
		sched.At(at, func() { e.Inject(0, 2, 500, nil) })
	}
	sched.Run()

	if eng.Reroutes != 2 {
		t.Fatalf("reroutes = %d, want 2 (down + up)", eng.Reroutes)
	}
	fp := e.Pipe(pipes.ID(failLink))
	if fp.Drops[pipes.DropLinkDown] == 0 {
		t.Error("no blackholed packets on the failed link before reconvergence")
	}
	// Conservation: everything injected is delivered or counted dropped.
	tot := e.Totals()
	if tot.Injected != 50 || tot.Delivered+tot.VirtualDrops != 50 || tot.InFlight != 0 {
		t.Fatalf("conservation: %+v", tot)
	}
	// Packets sent while down (after reconvergence) still arrive — the
	// long way around — so deliveries exceed the pre-failure count.
	if got[2] <= 10 {
		t.Errorf("only %d deliveries; rerouted traffic did not flow", got[2])
	}
	// After recovery the original route is restored.
	r2, ok := e.Binding().Table.Lookup(0, 2)
	if !ok || len(r2) != len(route) {
		t.Errorf("route after recovery = %v, want like %v", r2, route)
	}
	for i := range route {
		if r2[i] != route[i] {
			t.Errorf("route after recovery differs at hop %d: %v vs %v", i, r2, route)
		}
	}
}

func TestUnreachablePartitionBlackholes(t *testing.T) {
	// A line: VN0 - r0 - r1 - VN1. Failing both directions of the only
	// router link partitions the VNs; routes stay resolvable (Infinity
	// weight) and traffic blackholes at the down pipe.
	g := topology.Line(2, attrs(100, 5))
	e, sched, got := fixture(t, g)
	var steps []Profile
	for _, l := range g.Links {
		if g.Nodes[l.Src].Kind == topology.Stub && g.Nodes[l.Dst].Kind == topology.Stub {
			d := At(50 * vtime.Millisecond)
			d.Down = true
			steps = append(steps, Profile{Link: int(l.ID), Steps: []Step{d}})
		}
	}
	if len(steps) != 2 {
		t.Fatalf("expected 2 router-router links, got %d", len(steps))
	}
	spec := &Spec{Profiles: steps, Reroute: true, RerouteDelay: 10 * vtime.Millisecond}
	if _, err := Attach(sched, e, spec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		at := vtime.Time(i) * vtime.Time(10*vtime.Millisecond)
		sched.At(at, func() { e.Inject(0, 1, 500, nil) })
	}
	sched.Run()
	tot := e.Totals()
	if tot.Injected != 20 {
		t.Fatalf("injected %d", tot.Injected)
	}
	if got[1] == 0 || got[1] == 20 {
		t.Fatalf("deliveries = %d, want some before the cut and none after", got[1])
	}
	if tot.Delivered+tot.VirtualDrops != 20 || tot.InFlight != 0 {
		t.Fatalf("partition leaks packets: %+v", tot)
	}
}

func TestFloorLatency(t *testing.T) {
	lat := func(at, ms vtime.Duration) Step {
		s := At(at)
		s.Latency = ms
		return s
	}
	spec := &Spec{Profiles: []Profile{
		{Link: 3, Steps: []Step{lat(0, 9*vtime.Millisecond), lat(vtime.Second, 2*vtime.Millisecond)}},
		{Link: 3, Steps: []Step{lat(0, 7*vtime.Millisecond)}},
		{Link: 5, Steps: []Step{lat(0, 1*vtime.Millisecond)}},
	}}
	if f := spec.FloorLatency(3, 5*vtime.Millisecond); f != 2*vtime.Millisecond {
		t.Errorf("floor(3) = %v, want 2ms (profile dips below initial)", f)
	}
	if f := spec.FloorLatency(4, 5*vtime.Millisecond); f != 5*vtime.Millisecond {
		t.Errorf("floor(4) = %v, want initial (no profile)", f)
	}
	// A step that only raises latency never raises the floor.
	if f := spec.FloorLatency(5, vtime.Microsecond); f != vtime.Microsecond {
		t.Errorf("floor(5) = %v, want initial", f)
	}
	var nilSpec *Spec
	if f := nilSpec.FloorLatency(0, vtime.Second); f != vtime.Second {
		t.Errorf("nil spec floor = %v", f)
	}
	if nilSpec.LatencyFloorFunc() != nil {
		t.Error("nil spec should yield nil floor func")
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(edit func(*Spec)) *Spec {
		s := At(0)
		s.Bandwidth = 1e6
		spec := &Spec{Profiles: []Profile{{Link: 0, Steps: []Step{s}}}}
		edit(spec)
		return spec
	}
	cases := map[string]*Spec{
		"negative link":  mk(func(s *Spec) { s.Profiles[0].Link = -1 }),
		"link range":     mk(func(s *Spec) { s.Profiles[0].Link = 99 }),
		"no steps":       mk(func(s *Spec) { s.Profiles[0].Steps = nil }),
		"negative at":    mk(func(s *Spec) { s.Profiles[0].Steps[0].At = -1 }),
		"loss over 1":    mk(func(s *Spec) { s.Profiles[0].Steps[0].Loss = 1.5 }),
		"down and up":    mk(func(s *Spec) { s.Profiles[0].Steps[0].Down = true; s.Profiles[0].Steps[0].Up = true }),
		"negative loop":  mk(func(s *Spec) { s.Profiles[0].Loop = -1 }),
		"step past loop": mk(func(s *Spec) { s.Profiles[0].Loop = 1; s.Profiles[0].Steps[0].At = 2 }),
		"unsorted steps": mk(func(s *Spec) { s.Profiles[0].Steps = []Step{At(5), At(1)} }),
		"negative delay": mk(func(s *Spec) { s.RerouteDelay = -1 }),
	}
	for name, spec := range cases {
		if err := spec.Validate(10); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	ok := mk(func(*Spec) {})
	if err := ok.Validate(10); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (*Spec)(nil).Validate(10); err != nil {
		t.Errorf("nil spec rejected: %v", err)
	}
}

func TestParseTrace(t *testing.T) {
	steps, period, err := ParseTrace(TraceLTE)
	if err != nil {
		t.Fatal(err)
	}
	if period != 2*vtime.Second {
		t.Errorf("period = %v", period)
	}
	if len(steps) != 8 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Bandwidth != 24e6 || steps[0].Latency != 42*vtime.Millisecond {
		t.Errorf("step 0 = %+v", steps[0])
	}
	if steps[0].Loss != Unchanged {
		t.Errorf("trace step sets loss: %+v", steps[0])
	}
	for _, name := range []string{"lte", "satellite", "wifi"} {
		text, ok := BundledTrace(name)
		if !ok {
			t.Fatalf("bundled trace %q missing", name)
		}
		if _, _, err := ParseTrace(text); err != nil {
			t.Errorf("bundled trace %q: %v", name, err)
		}
	}
	if _, ok := BundledTrace("nope"); ok {
		t.Error("unknown bundled trace resolved")
	}
	for name, text := range map[string]string{
		"empty":         "# nothing\n",
		"bad time":      "x 1 1\n",
		"bad bandwidth": "0 -3\n",
		"bad latency":   "0 1 -2\n",
		"unsorted":      "1 1\n0.5 1\n",
		"short period":  "period 1\n0 1\n2 1\n",
		"extra columns": "0 1 2 3\n",
	} {
		if _, _, err := ParseTrace(text); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}
}

func TestParseScript(t *testing.T) {
	spec, err := ParseScript("3@2s loss=0.05; 3@5s down; 3@8s up; 1@0s bw=4 lat=20ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Profiles) != 2 {
		t.Fatalf("profiles = %d", len(spec.Profiles))
	}
	// Profiles in link order.
	if spec.Profiles[0].Link != 1 || spec.Profiles[1].Link != 3 {
		t.Fatalf("links = %d, %d", spec.Profiles[0].Link, spec.Profiles[1].Link)
	}
	p1 := spec.Profiles[0].Steps[0]
	if p1.Bandwidth != 4e6 || p1.Latency != 20*vtime.Millisecond || p1.Loss != Unchanged {
		t.Errorf("link 1 step = %+v", p1)
	}
	p3 := spec.Profiles[1].Steps
	if len(p3) != 3 || p3[0].Loss != 0.05 || !p3[1].Down || !p3[2].Up {
		t.Errorf("link 3 steps = %+v", p3)
	}
	if !spec.Reroute {
		t.Error("down/up did not enable reroute")
	}
	if spec2, err := ParseScript("3@1s down; noreroute"); err != nil || spec2.Reroute {
		t.Errorf("noreroute: %v %+v", err, spec2)
	}
	if spec3, err := ParseScript("3@1s down; reroute=100ms"); err != nil || spec3.RerouteDelay != 100*vtime.Millisecond {
		t.Errorf("reroute delay: %v %+v", err, spec3)
	}
	for _, bad := range []string{
		"", "3@2s", "x@2s down", "3@x down", "3@2s wat", "3@2s bw=-1",
		"3@2s loss=1.5", "3@2s lat=zz", "reroute=-5s", "3@-2s down",
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("%q: parsed", bad)
		}
	}
}
