package dynamics

// The federation codec for a Spec. It lives here rather than in
// fednet/wire because the engine depends on routing (for reconvergence),
// and wire must stay import-light — it is linked into every process that
// touches a socket. The encoding uses wire's fixed-width little-endian
// cursors and is bit-exact: float64 fields travel as raw bits, so every
// worker replays the coordinator's exact step values, and decode→encode is
// the identity on every accepted input (the fuzz tests pin this).

import (
	"fmt"

	"modelnet/internal/fednet/wire"
	"modelnet/internal/vtime"
)

// Encode serializes a spec for the federation setup frame:
//
//	u8 flags (bit0 = reroute) | i64 rerouteDelay | u32 nProfiles
//	per profile: i32 link | i64 loop | u32 nSteps
//	per step:    i64 at | f64 bandwidth | i64 latency | f64 loss | u8 down | u8 up
//
// A nil spec encodes to nil; callers ship that as an empty blob meaning
// "no dynamics".
func Encode(s *Spec) []byte {
	if s == nil {
		return nil
	}
	var e wire.Enc
	flags := uint8(0)
	if s.Reroute {
		flags |= 1
	}
	e.U8(flags)
	e.I64(int64(s.RerouteDelay))
	e.U32(uint32(len(s.Profiles)))
	for _, p := range s.Profiles {
		e.I32(int32(p.Link))
		e.I64(int64(p.Loop))
		e.U32(uint32(len(p.Steps)))
		for _, st := range p.Steps {
			e.I64(int64(st.At))
			e.F64(st.Bandwidth)
			e.I64(int64(st.Latency))
			e.F64(st.Loss)
			e.Bool(st.Down)
			e.Bool(st.Up)
		}
	}
	return e.Bytes()
}

// Decode parses Encode output and re-validates the spec's structural
// invariants (the link range is checked later, against the decoded
// topology). Booleans are strict: the decoder rejects any byte the encoder
// would not emit.
func Decode(b []byte) (*Spec, error) {
	d := wire.NewDec(b)
	flags := d.U8()
	s := &Spec{
		Reroute:      flags&1 != 0,
		RerouteDelay: vtime.Duration(d.I64()),
	}
	nProfiles := d.Len(16)
	for i := 0; i < nProfiles; i++ {
		p := Profile{
			Link: int(d.I32()),
			Loop: vtime.Duration(d.I64()),
		}
		nSteps := d.Len(34)
		for j := 0; j < nSteps; j++ {
			st := Step{
				At:        vtime.Duration(d.I64()),
				Bandwidth: d.F64(),
				Latency:   vtime.Duration(d.I64()),
				Loss:      d.F64(),
			}
			var err error
			if st.Down, err = d.StrictBool(); err != nil {
				return nil, err
			}
			if st.Up, err = d.StrictBool(); err != nil {
				return nil, err
			}
			p.Steps = append(p.Steps, st)
		}
		s.Profiles = append(s.Profiles, p)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if flags > 1 {
		return nil, fmt.Errorf("dynamics: flags %#x has unknown bits", flags)
	}
	if err := s.Validate(0); err != nil {
		return nil, err
	}
	return s, nil
}
