package dynamics

import (
	"fmt"
	"strconv"
	"strings"

	"modelnet/internal/vtime"
)

// ParseTrace parses the text capacity-trace format:
//
//	# comment
//	period 2.0              # optional: replay cycle length, seconds
//	0.00  12.0  45          # time_s  bandwidth_mbps  [latency_ms]
//	0.25   6.0  60
//	...
//
// Each data line is a step at time_s (seconds from cycle start) setting the
// link rate to bandwidth_mbps and — when the third column is present — the
// one-way latency to latency_ms. Lines must be sorted by time. The returned
// period is 0 when the trace has no period directive (play once); a
// directive must be at least the last step time.
func ParseTrace(text string) ([]Step, vtime.Duration, error) {
	var steps []Step
	period := vtime.Duration(0)
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "period" {
			if len(fields) != 2 {
				return nil, 0, fmt.Errorf("trace line %d: want 'period seconds'", ln+1)
			}
			sec, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || sec <= 0 {
				return nil, 0, fmt.Errorf("trace line %d: bad period %q", ln+1, fields[1])
			}
			period = vtime.DurationOf(sec)
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, 0, fmt.Errorf("trace line %d: want 'time_s bandwidth_mbps [latency_ms]', got %q", ln+1, strings.TrimSpace(line))
		}
		tSec, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || tSec < 0 {
			return nil, 0, fmt.Errorf("trace line %d: bad time %q", ln+1, fields[0])
		}
		mbps, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || mbps < 0 {
			return nil, 0, fmt.Errorf("trace line %d: bad bandwidth %q", ln+1, fields[1])
		}
		st := At(vtime.DurationOf(tSec))
		st.Bandwidth = mbps * 1e6
		if len(fields) == 3 {
			latMS, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || latMS < 0 {
				return nil, 0, fmt.Errorf("trace line %d: bad latency %q", ln+1, fields[2])
			}
			st.Latency = vtime.DurationOf(latMS / 1e3)
		}
		if n := len(steps); n > 0 && st.At < steps[n-1].At {
			return nil, 0, fmt.Errorf("trace line %d: time %v before previous step", ln+1, st.At)
		}
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return nil, 0, fmt.Errorf("trace has no steps")
	}
	if period > 0 && period <= steps[len(steps)-1].At {
		return nil, 0, fmt.Errorf("trace period %v not after last step %v", period, steps[len(steps)-1].At)
	}
	return steps, period, nil
}

// TraceProfile parses a trace and binds it to one link, looping with the
// trace's period (or playing once if it has none).
func TraceProfile(link int, text string) (Profile, error) {
	steps, period, err := ParseTrace(text)
	if err != nil {
		return Profile{}, err
	}
	return Profile{Link: link, Steps: steps, Loop: period}, nil
}

// BundledTrace resolves a bundled sample trace by name ("lte", "satellite",
// "wifi"); ok is false for unknown names.
func BundledTrace(name string) (string, bool) {
	switch name {
	case "lte":
		return TraceLTE, true
	case "satellite", "sat":
		return TraceSatellite, true
	case "wifi":
		return TraceWifi, true
	}
	return "", false
}

// The bundled sample traces: short synthetic cycles in the shape of the
// delivery-slot traces cellular emulators replay. Content is a compile-time
// constant, so every process — coordinator, worker, test — replays exactly
// the same steps without touching the filesystem.
const (
	// TraceLTE is a bursty cellular downlink: deep capacity swings with
	// latency inflating as the rate collapses.
	TraceLTE = `# synthetic LTE downlink capacity trace
period 2.0
0.00  24.0   42
0.25  16.0   48
0.50   6.0   65
0.75   1.8  110
1.00   4.0   80
1.25  12.0   55
1.50  20.0   45
1.75   9.0   60
`

	// TraceSatellite is a GEO satellite link: stable but thin rate under
	// half-second propagation delay.
	TraceSatellite = `# synthetic GEO satellite trace
period 3.0
0.0   8.0  520
0.6   5.0  540
1.2   2.5  590
1.8   4.0  560
2.4   7.0  525
`

	// TraceWifi is a busy 802.11 cell: high nominal rate, contention dips,
	// and latencies that cross below typical wired-core values — the case
	// that forces lookahead to be derived from the profile's floor.
	TraceWifi = `# synthetic 802.11 contention trace
period 1.6
0.0  50.0    2
0.2  30.0    4
0.4  12.0    9
0.6   5.0   12
0.8  18.0    7
1.0  40.0    3
1.2  25.0    5
1.4  10.0    8
`
)
