package dynamics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"modelnet/internal/vtime"
)

// ParseScript parses the declarative fault-injection timeline the CLI's
// -dynamics flag carries: semicolon-separated clauses of the form
//
//	LINK@TIME action [action...]
//
// where TIME is a Go duration ("2s", "500ms") from the start of the run and
// each action is one of
//
//	bw=MBPS      set the link rate (Mb/s; 0 = infinite)
//	lat=DUR      set the one-way latency (Go duration)
//	loss=FRAC    set the random loss rate, [0,1)
//	down         fail the link
//	up           recover the link
//
// plus the global clauses "reroute=DUR" (reconvergence delay; reroute is on
// by default whenever any down/up step appears) and "noreroute". Example:
//
//	3@2s loss=0.05; 3@5s down; 3@8s up; reroute=100ms
func ParseScript(text string) (*Spec, error) {
	spec := &Spec{}
	byLink := map[int][]Step{}
	var links []int
	sawFail := false
	noReroute := false
	for _, rawClause := range strings.Split(text, ";") {
		clause := strings.TrimSpace(rawClause)
		if clause == "" {
			continue
		}
		if clause == "noreroute" {
			noReroute = true
			continue
		}
		if v, ok := strings.CutPrefix(clause, "reroute="); ok {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("dynamics script %q: bad reroute delay", clause)
			}
			spec.RerouteDelay = vtime.Duration(d)
			continue
		}
		head, rest, ok := strings.Cut(clause, " ")
		if !ok {
			return nil, fmt.Errorf("dynamics script %q: want 'LINK@TIME action...'", clause)
		}
		linkStr, timeStr, ok := strings.Cut(head, "@")
		if !ok {
			return nil, fmt.Errorf("dynamics script %q: want LINK@TIME, got %q", clause, head)
		}
		link, err := strconv.Atoi(linkStr)
		if err != nil || link < 0 {
			return nil, fmt.Errorf("dynamics script %q: bad link %q", clause, linkStr)
		}
		at, err := time.ParseDuration(timeStr)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("dynamics script %q: bad time %q", clause, timeStr)
		}
		st := At(vtime.Duration(at))
		for _, action := range strings.Fields(rest) {
			switch key, val, _ := strings.Cut(action, "="); key {
			case "down":
				st.Down = true
				sawFail = true
			case "up":
				st.Up = true
				sawFail = true
			case "bw":
				mbps, err := strconv.ParseFloat(val, 64)
				if err != nil || mbps < 0 {
					return nil, fmt.Errorf("dynamics script %q: bad bw %q", clause, val)
				}
				st.Bandwidth = mbps * 1e6
			case "lat":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("dynamics script %q: bad lat %q", clause, val)
				}
				st.Latency = vtime.Duration(d)
			case "loss":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil || f < 0 || f >= 1 {
					return nil, fmt.Errorf("dynamics script %q: bad loss %q", clause, val)
				}
				st.Loss = f
			default:
				return nil, fmt.Errorf("dynamics script %q: unknown action %q", clause, action)
			}
		}
		if _, seen := byLink[link]; !seen {
			links = append(links, link)
		}
		byLink[link] = append(byLink[link], st)
	}
	sort.Ints(links)
	for _, link := range links {
		steps := byLink[link]
		sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
		spec.Profiles = append(spec.Profiles, Profile{Link: link, Steps: steps})
	}
	if len(spec.Profiles) == 0 {
		return nil, fmt.Errorf("dynamics script %q has no steps", text)
	}
	spec.Reroute = sawFail && !noReroute
	if err := spec.Validate(0); err != nil {
		return nil, err
	}
	return spec, nil
}
