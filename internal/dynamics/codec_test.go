package dynamics

// The codec tests follow fednet/wire's fuzz discipline: decoding arbitrary
// bytes never panics and never silently succeeds on a structurally invalid
// spec, and every accepted input round-trips byte-identically. The seed
// corpus runs on every `go test ./...`.

import (
	"bytes"
	"reflect"
	"testing"

	"modelnet/internal/vtime"
)

// codecSeed is a spec exercising every field: a looping trace profile, a
// fail/recover pair, and a custom reroute delay.
func codecSeed() *Spec {
	bw := At(0)
	bw.Bandwidth = 6e6
	bw.Latency = 45 * vtime.Millisecond
	lossy := At(250 * vtime.Millisecond)
	lossy.Loss = 0.05
	down := At(100 * vtime.Millisecond)
	down.Down = true
	up := At(400 * vtime.Millisecond)
	up.Up = true
	return &Spec{
		Profiles: []Profile{
			{Link: 0, Steps: []Step{bw, lossy}, Loop: 500 * vtime.Millisecond},
			{Link: 3, Steps: []Step{down, up}},
		},
		Reroute:      true,
		RerouteDelay: 20 * vtime.Millisecond,
	}
}

func TestCodecRoundTripExact(t *testing.T) {
	spec := codecSeed()
	b := Encode(spec)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("decoded spec differs:\ngot  %+v\nwant %+v", got, spec)
	}
	if !bytes.Equal(Encode(got), b) {
		t.Fatal("re-encode not byte-identical")
	}
	if Encode(nil) != nil {
		t.Fatal("nil spec must encode to nil (empty setup blob)")
	}
}

func TestCodecRejectsCorruptStructure(t *testing.T) {
	good := Encode(codecSeed())
	cases := map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:len(b)-3] },
		"trailing":      func(b []byte) []byte { return append(b, 0) },
		"unknown flags": func(b []byte) []byte { b[0] |= 0x80; return b },
		"bool byte 2":   func(b []byte) []byte { b[len(b)-1] = 2; return b },
		"empty input":   func(b []byte) []byte { return nil },
		"profile count": func(b []byte) []byte { b[9] = 0xff; return b },
		"down and up":   func(b []byte) []byte { b[len(b)-2] = 1; b[len(b)-1] = 1; return b },
		"unsorted steps": func(b []byte) []byte {
			s := codecSeed()
			s.Profiles[1].Steps[0].At = vtime.Second // after the Up step
			return Encode(s)
		},
		"negative reroute delay": func(b []byte) []byte {
			s := codecSeed()
			s.RerouteDelay = -vtime.Millisecond
			return Encode(s)
		},
	}
	for name, corrupt := range cases {
		b := corrupt(append([]byte(nil), good...))
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: corrupt spec accepted", name)
		}
	}
}

// FuzzCodec checks the codec end to end: arbitrary bytes never panic, and
// a spec that decodes must re-encode byte-identically and pass Validate —
// the decoder accepts nothing the engine would later reject.
func FuzzCodec(f *testing.F) {
	f.Add(Encode(codecSeed()))
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(s), b) {
			t.Fatalf("decode/encode not canonical for %x", b)
		}
		if err := s.Validate(0); err != nil {
			t.Fatalf("decoder accepted an invalid spec: %v", err)
		}
	})
}
