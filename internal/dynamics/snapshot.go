package dynamics

// Engine snapshot/restore: the dynamics cursor — which cycle each profile is
// in, which reroutes are scheduled but unfired, the down-set, and the step
// counters. The spec itself is a pure value the caller already has (it ships
// bit-exact in the federated setup frame), so a snapshot only records where
// in the spec's schedule the engine stands.

import (
	"fmt"
	"sort"

	"modelnet/internal/emucore"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// EngineState is an engine's serializable cursor.
type EngineState struct {
	Applied  uint64
	Reroutes uint64
	// Down is the sorted set of currently-failed links.
	Down []topology.LinkID
	// Bases holds each profile's current cycle base, index-aligned with
	// Spec.Profiles.
	Bases []vtime.Time
	// PendingReroutes lists the fire times of scheduled-but-unfired
	// reroutes, ascending.
	PendingReroutes []vtime.Time
}

// Snapshot captures the engine's cursor. The engine must have been built by
// Attach (replay engines from EnumerateReroutes do not track their cursor).
func (e *Engine) Snapshot() (EngineState, error) {
	if e.bases == nil {
		return EngineState{}, fmt.Errorf("dynamics: Snapshot on a non-tracking engine")
	}
	st := EngineState{
		Applied:         e.Applied,
		Reroutes:        e.Reroutes,
		Down:            e.downList(),
		Bases:           append([]vtime.Time(nil), e.bases...),
		PendingReroutes: append([]vtime.Time(nil), e.pendingReroutes...),
	}
	return st, nil
}

// AttachRestored rebuilds a snapshotted engine on a scheduler whose clock
// stands at the snapshot's barrier: it schedules the unfired remainder of
// each profile's current cycle, the rollover chains, and every pending
// reroute, exactly as the original engine had them pending.
//
// Tie-order caveat: events are rescheduled profile-by-profile (cycles
// ordered by base, then profile index — the order rollovers originally
// fired in), with reroutes that outlived their cycle scheduled first. When
// two *different* profiles collide on the same link at the same instant,
// the insertion-order tie-break after a restore can differ from the
// original run's. Same-profile ordering is always preserved. Federated
// recovery does not depend on this path (it replays from t=0); the
// restriction only bounds what the snapshot≡restore property test may
// assert.
func AttachRestored(sched *vtime.Scheduler, emu *emucore.Emulator, spec *Spec, st EngineState) (*Engine, error) {
	if spec == nil {
		return nil, fmt.Errorf("dynamics: AttachRestored needs a spec")
	}
	numLinks := 0
	if emu != nil {
		numLinks = emu.NumPipes()
	}
	if err := spec.Validate(numLinks); err != nil {
		return nil, err
	}
	if len(st.Bases) != len(spec.Profiles) {
		return nil, fmt.Errorf("dynamics: restore: %d bases for %d profiles", len(st.Bases), len(spec.Profiles))
	}
	now := sched.Now()
	e := &Engine{spec: spec, sched: sched, emu: emu, down: map[topology.LinkID]bool{}}
	for _, lid := range st.Down {
		e.down[lid] = true
	}
	e.Applied = st.Applied
	e.Reroutes = st.Reroutes
	e.bases = append([]vtime.Time(nil), st.Bases...)

	// Split the pending reroutes into those the current cycles will
	// reschedule below and the leftovers from earlier cycles; the latter
	// carry the oldest scheduling order, so they go on the scheduler first.
	remaining := append([]vtime.Time(nil), st.PendingReroutes...)
	take := func(rt vtime.Time) bool {
		for i, v := range remaining {
			if v == rt {
				remaining = append(remaining[:i], remaining[i+1:]...)
				return true
			}
		}
		return false
	}
	type cycleRef struct {
		base vtime.Time
		pi   int
	}
	order := make([]cycleRef, len(spec.Profiles))
	current := make([][]vtime.Time, len(spec.Profiles)) // matched reroutes per profile
	for pi := range spec.Profiles {
		order[pi] = cycleRef{base: st.Bases[pi], pi: pi}
		p := &spec.Profiles[pi]
		for _, step := range p.Steps {
			if !(step.Down || step.Up) || !spec.Reroute {
				continue
			}
			rt := st.Bases[pi].Add(step.At).Add(spec.rerouteDelay())
			if rt > now && take(rt) {
				current[pi] = append(current[pi], rt)
			} else {
				current[pi] = append(current[pi], 0) // fired (or older-cycle): skip
			}
		}
	}
	for _, rt := range remaining {
		if rt <= now {
			return nil, fmt.Errorf("dynamics: restore: pending reroute at %v not after clock %v", rt, now)
		}
		e.trackReroute(rt)
		e.sched.At(rt, e.reroute)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].base != order[j].base {
			return order[i].base < order[j].base
		}
		return order[i].pi < order[j].pi
	})
	for _, c := range order {
		p := &spec.Profiles[c.pi]
		if c.base > now {
			return nil, fmt.Errorf("dynamics: restore: profile %d base %v after clock %v", c.pi, c.base, now)
		}
		ri := 0
		for _, step := range p.Steps {
			step := step
			at := c.base.Add(step.At)
			if at > now {
				link := p.Link
				e.sched.At(at, func() { e.apply(link, step) })
			}
			if (step.Down || step.Up) && spec.Reroute {
				if rt := current[c.pi][ri]; rt != 0 {
					e.trackReroute(rt)
					e.sched.At(rt, e.reroute)
				}
				ri++
			}
		}
		if p.Loop > 0 {
			next := c.base.Add(p.Loop)
			if next <= now {
				return nil, fmt.Errorf("dynamics: restore: profile %d rollover %v not after clock %v", c.pi, next, now)
			}
			pi := c.pi
			e.sched.At(next, func() { e.scheduleCycle(pi, next) })
		}
	}
	return e, nil
}
