package dynamics

import (
	"fmt"
	"sort"

	"modelnet/internal/bind"
	"modelnet/internal/emucore"
	"modelnet/internal/pipes"
	"modelnet/internal/routing"
	"modelnet/internal/topology"
	"modelnet/internal/vtime"
)

// Unchanged is the sentinel for "leave this parameter as it is". Any
// negative Bandwidth, Latency, or Loss means unchanged; Unchanged is the
// canonical value parsers and codecs use.
const Unchanged = -1

// DefaultRerouteDelay is the reconvergence delay applied between a link
// state change and the route recomputation when a Spec does not set one —
// roughly a triggered-update round of the distance-vector protocol.
const DefaultRerouteDelay = 50 * vtime.Millisecond

// Step is one scheduled parameter change on a link. Zero and positive
// field values are applied; negative ones (Unchanged) are kept. A zero
// Bandwidth means infinite bandwidth (pipes.Params semantics). Build steps
// with At() so unset fields default to Unchanged rather than zero.
type Step struct {
	At        vtime.Duration // offset from the profile's cycle start
	Bandwidth float64        // bits/second; 0 = infinite, negative = keep
	Latency   vtime.Duration // negative = keep
	Loss      float64        // [0,1); negative = keep
	Down      bool           // fail the link
	Up        bool           // recover the link
}

// At returns a Step at the given offset with every parameter Unchanged.
func At(at vtime.Duration) Step {
	return Step{At: at, Bandwidth: Unchanged, Latency: Unchanged, Loss: Unchanged}
}

// Profile is one link's timeline: Steps sorted by At, optionally replayed
// cyclically with period Loop (0 = play once).
type Profile struct {
	Link  int            // pipe / distilled-link ID
	Steps []Step         // sorted by At, non-decreasing
	Loop  vtime.Duration // cycle period; 0 = no loop; steps must have At < Loop
}

// Spec is a complete dynamics description for one emulation. It is a pure
// value: the coordinator ships it bit-exact to every federated worker
// (dynamics.Encode, shipped as its own setup-frame blob), and every
// execution mode attaches it identically.
type Spec struct {
	Profiles []Profile
	// Reroute recomputes routes RerouteDelay after every Down/Up step, so
	// traffic deterministically routes around failed links.
	Reroute bool
	// RerouteDelay is the virtual reconvergence delay; 0 means
	// DefaultRerouteDelay.
	RerouteDelay vtime.Duration
}

// rerouteDelay resolves the effective delay.
func (s *Spec) rerouteDelay() vtime.Duration {
	if s.RerouteDelay <= 0 {
		return DefaultRerouteDelay
	}
	return s.RerouteDelay
}

// Validate checks the spec's structural invariants. numLinks bounds the
// Link fields when positive; pass 0 when the topology is not known yet
// (the wire decoder re-validates, the engine validates against the
// emulator's pipe count at Attach).
func (s *Spec) Validate(numLinks int) error {
	if s == nil {
		return nil
	}
	if s.RerouteDelay < 0 {
		return fmt.Errorf("dynamics: negative reroute delay %v", s.RerouteDelay)
	}
	for i := range s.Profiles {
		p := &s.Profiles[i]
		if p.Link < 0 {
			return fmt.Errorf("dynamics: profile %d has negative link %d", i, p.Link)
		}
		if numLinks > 0 && p.Link >= numLinks {
			return fmt.Errorf("dynamics: profile %d link %d outside %d links", i, p.Link, numLinks)
		}
		if p.Loop < 0 {
			return fmt.Errorf("dynamics: profile %d has negative loop %v", i, p.Loop)
		}
		if len(p.Steps) == 0 {
			return fmt.Errorf("dynamics: profile %d (link %d) has no steps", i, p.Link)
		}
		prev := vtime.Duration(0)
		for j, st := range p.Steps {
			if st.At < 0 {
				return fmt.Errorf("dynamics: link %d step %d at negative time %v", p.Link, j, st.At)
			}
			if st.At < prev {
				return fmt.Errorf("dynamics: link %d steps not sorted at index %d", p.Link, j)
			}
			prev = st.At
			if p.Loop > 0 && st.At >= p.Loop {
				return fmt.Errorf("dynamics: link %d step %d at %v outside loop period %v", p.Link, j, st.At, p.Loop)
			}
			if st.Loss >= 1 || st.Loss != st.Loss { // reject ≥1 and NaN
				return fmt.Errorf("dynamics: link %d step %d loss %v outside [0,1)", p.Link, j, st.Loss)
			}
			if st.Bandwidth != st.Bandwidth {
				return fmt.Errorf("dynamics: link %d step %d bandwidth is NaN", p.Link, j)
			}
			if st.Down && st.Up {
				return fmt.Errorf("dynamics: link %d step %d is both down and up", p.Link, j)
			}
		}
	}
	return nil
}

// FloorLatency returns the minimum latency the link can ever take under the
// spec: the smaller of initial and every explicit latency step in any of
// the link's profiles. Conservative synchronization must use this floor —
// not the initial latency — as the link's lookahead contribution, or a
// mid-run latency drop could let a cross-shard message arrive inside an
// already-released window.
func (s *Spec) FloorLatency(link topology.LinkID, initial vtime.Duration) vtime.Duration {
	min := initial
	if s == nil {
		return min
	}
	for i := range s.Profiles {
		if topology.LinkID(s.Profiles[i].Link) != link {
			continue
		}
		for _, st := range s.Profiles[i].Steps {
			if st.Latency >= 0 && st.Latency < min {
				min = st.Latency
			}
		}
	}
	return min
}

// LatencyFloorFunc adapts FloorLatency to parcore.ComputeSyncFloor's floor
// callback. A nil spec yields nil (no flooring).
func (s *Spec) LatencyFloorFunc() func(topology.LinkID, vtime.Duration) vtime.Duration {
	if s == nil {
		return nil
	}
	return s.FloorLatency
}

// Engine is a Spec attached to one emulator: all link-state events live on
// that emulator's scheduler. Every shard of a parallel or federated run
// attaches its own Engine over the same Spec; each applies every step to
// its own (complete) pipe set, which is exactly what the sequential mode
// does, so all modes agree.
type Engine struct {
	spec  *Spec
	sched *vtime.Scheduler
	emu   *emucore.Emulator // nil in replay mode (EnumerateReroutes)
	down  map[topology.LinkID]bool

	// OnReroute, when set, replaces the default global-matrix rebuild: it
	// receives the sorted set of currently down links. Sharded workers use it
	// to advance their shard table's reroute epoch; the coordinator's replay
	// (EnumerateReroutes) uses it to snapshot per-epoch down-sets. The
	// schedule and tie-order of reroute events is identical either way, so
	// epoch numbering agrees across all parties by construction.
	OnReroute func(down []topology.LinkID)

	// Applied counts steps fired and Reroutes route recomputations — cheap
	// cross-mode determinism probes.
	Applied  uint64
	Reroutes uint64

	// Cursor tracking for Snapshot: the current cycle base per profile and
	// the fire times of scheduled-but-unfired reroutes (sorted ascending;
	// a reroute can outlive its cycle when the reconvergence delay spans a
	// loop boundary). nil bases = tracking off (EnumerateReroutes replays).
	bases           []vtime.Time
	pendingReroutes []vtime.Time
}

// Attach validates the spec against the emulator's pipe set and schedules
// the first cycle of every profile. Call it right after the emulator is
// created, before any workload is installed, so dynamics events win the
// scheduler's insertion-order tie-break against same-time workload events
// in every execution mode. A nil spec attaches nothing and returns nil.
func Attach(sched *vtime.Scheduler, emu *emucore.Emulator, spec *Spec) (*Engine, error) {
	if spec == nil {
		return nil, nil
	}
	if err := spec.Validate(emu.NumPipes()); err != nil {
		return nil, err
	}
	e := &Engine{spec: spec, sched: sched, emu: emu, down: map[topology.LinkID]bool{}}
	e.bases = make([]vtime.Time, len(spec.Profiles))
	for i := range spec.Profiles {
		e.scheduleCycle(i, sched.Now())
	}
	return e, nil
}

// scheduleCycle schedules one replay of p starting at base, plus — for a
// looping profile — a rollover event at the next cycle boundary that
// schedules the cycle after it. Reroutes are scheduled here too (their
// times are static functions of the spec), so their tie-order against
// everything else is fixed at attach time.
func (e *Engine) scheduleCycle(pi int, base vtime.Time) {
	p := &e.spec.Profiles[pi]
	if e.bases != nil {
		e.bases[pi] = base
	}
	for _, st := range p.Steps {
		st := st
		at := base.Add(st.At)
		e.sched.At(at, func() { e.apply(p.Link, st) })
		if (st.Down || st.Up) && e.spec.Reroute {
			rt := at.Add(e.spec.rerouteDelay())
			e.trackReroute(rt)
			e.sched.At(rt, e.reroute)
		}
	}
	if p.Loop > 0 {
		next := base.Add(p.Loop)
		e.sched.At(next, func() { e.scheduleCycle(pi, next) })
	}
}

// trackReroute records a scheduled reroute's fire time, keeping the pending
// list sorted (appends arrive per-profile, not in global time order).
func (e *Engine) trackReroute(rt vtime.Time) {
	if e.bases == nil {
		return
	}
	i := sort.Search(len(e.pendingReroutes), func(i int) bool { return e.pendingReroutes[i] > rt })
	e.pendingReroutes = append(e.pendingReroutes, 0)
	copy(e.pendingReroutes[i+1:], e.pendingReroutes[i:])
	e.pendingReroutes[i] = rt
}

// apply installs one step on its pipe, keeping Unchanged fields. Down-state
// tracking and tracing always run; the pipe mutation is skipped when the
// slot is not materialized (sparse shard views hold only owned pipes) or in
// replay mode — the trace therefore stays byte-identical across full,
// sparse, and replayed execution.
func (e *Engine) apply(link int, st Step) {
	if st.Down {
		e.down[topology.LinkID(link)] = true
	}
	if st.Up {
		delete(e.down, topology.LinkID(link))
	}
	e.Applied++
	if e.emu == nil {
		return
	}
	id := pipes.ID(link)
	if p := e.emu.Pipe(id); p != nil {
		params := p.Params()
		if st.Bandwidth >= 0 {
			params.BandwidthBps = st.Bandwidth
		}
		if st.Latency >= 0 {
			params.Latency = st.Latency
		}
		if st.Loss >= 0 {
			params.LossRate = st.Loss
		}
		params.Down = (params.Down || st.Down) && !st.Up
		e.emu.SetPipeParams(id, params)
	}
	if e.emu.Shard() <= 0 {
		// Every shard applies every step; record it once, on the shard that
		// exists in all modes (the sequential emulator or shard 0), so the
		// trace stays mode-invariant.
		e.emu.Trace.DynStep(e.sched.Now(), link)
	}
}

// Down reports whether the engine currently considers the link failed.
func (e *Engine) Down(link topology.LinkID) bool { return e.down[link] }

// downList returns the sorted down-set, the canonical epoch description.
func (e *Engine) downList() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(e.down))
	for lid := range e.down {
		out = append(out, lid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reroute rebuilds the routing matrix with every down link's latency raised
// to routing.Infinity — the same degradation routing's shortest-path
// reference applies — and swaps it into the emulator. Destinations whose
// only paths traverse down links stay "reachable" at Infinity cost, so
// their traffic deterministically blackholes at the down pipe instead of
// failing route lookup; that is the unreachable-partition semantics.
// With OnReroute set, the hook replaces the rebuild (sharded workers bump
// their table's epoch; replays snapshot the down-set).
func (e *Engine) reroute() {
	e.Reroutes++
	if e.bases != nil && len(e.pendingReroutes) > 0 {
		// Events fire in time order, so the front entry is this reroute.
		e.pendingReroutes = e.pendingReroutes[:copy(e.pendingReroutes, e.pendingReroutes[1:])]
	}
	if e.emu != nil && e.emu.Shard() <= 0 {
		e.emu.Trace.Reroute(e.sched.Now()) // once per mode, as in apply
	}
	if e.OnReroute != nil {
		e.OnReroute(e.downList())
		return
	}
	if e.emu == nil {
		return
	}
	g := e.emu.Graph()
	if len(e.down) > 0 {
		g = g.Clone()
		for i := range g.Links {
			if e.down[g.Links[i].ID] {
				g.Links[i].Attr.LatencySec = routing.Infinity
			}
		}
	}
	m, err := bind.BuildMatrix(g, e.emu.Binding().VNHome)
	if err != nil {
		// Down links keep finite (Infinity-valued) latency, so the graph's
		// connectivity is what it was at bind time; a failure here is a
		// programming error, not a reachable runtime state.
		panic(fmt.Sprintf("dynamics: reroute: %v", err))
	}
	e.emu.SetTable(m)
}

// MaxRerouteEpochs bounds EnumerateReroutes: a looping failure script
// schedules reroutes forever, and the coordinator's summary oracle keeps one
// down-set per epoch, so runs are capped at this many reroute epochs.
const MaxRerouteEpochs = 4096

// EnumerateReroutes replays the spec's failure/recovery schedule — no
// emulator, just the engine's event scheduling on a scratch virtual-time
// scheduler, with identical tie-breaks — and returns the down-set in force
// at each reroute epoch within the horizon: index 0 is the pristine
// pre-reroute world, index e the set after the e-th reroute fired. The
// result feeds the coordinator's bind.SummaryOracle so worker epoch numbers
// resolve to the exact graphs their own engines rerouted against. A spec
// whose schedule exceeds MaxRerouteEpochs epochs inside the horizon is
// rejected loudly.
func EnumerateReroutes(spec *Spec, numLinks int, horizon vtime.Duration) ([][]topology.LinkID, error) {
	sets := [][]topology.LinkID{nil}
	if spec == nil || !spec.Reroute {
		return sets, nil
	}
	if err := spec.Validate(numLinks); err != nil {
		return nil, err
	}
	sched := vtime.NewScheduler()
	e := &Engine{spec: spec, sched: sched, down: map[topology.LinkID]bool{}}
	e.OnReroute = func(down []topology.LinkID) {
		sets = append(sets, down)
	}
	for i := range spec.Profiles {
		e.scheduleCycle(i, sched.Now())
	}
	limit := vtime.Time(0).Add(horizon)
	for sched.Pending() > 0 && sched.NextEventTime() <= limit {
		if len(sets) > MaxRerouteEpochs {
			return nil, fmt.Errorf("dynamics: failure script schedules more than %d reroute epochs within %v", MaxRerouteEpochs, horizon)
		}
		sched.Step()
	}
	return sets, nil
}
