package modelnet_test

// A docs check: every relative link in the repository's markdown files
// must point at a file (or directory) that exists. CI runs this test by
// name, and it rides `go test ./...` like everything else, so a renamed
// file cannot silently orphan the README or DESIGN cross-references.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); targets with spaces or parentheses do not
// occur in this repository's docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownRelativeLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — is the test running at the repo root?")
	}
	checked := 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external or intra-document
			}
			// Strip any fragment; resolve relative to the linking file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", md, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links checked — the README should have some")
	}
}
