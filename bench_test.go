package modelnet_test

// One benchmark per table and figure in the paper's evaluation. Each bench
// runs the scaled experiment and prints the same rows/series the paper
// reports (use -v to see them); cmd/mnbench runs the full-scale versions.
//
//	go test -bench=. -benchmem -benchtime 1x
//
// The work happens in virtual time, so b.N iterations re-run the whole
// experiment; benchtime 1x is the intended mode.

import (
	"os"
	"runtime"
	"testing"

	"modelnet/internal/experiments"
)

// benchScale is the default scale for bench runs: small enough to finish
// in seconds, large enough to stay in each experiment's saturated regime.
const benchScale = 0.25

func out(b *testing.B) *os.File {
	if testing.Verbose() {
		return os.Stdout
	}
	return nil
}

func BenchmarkFig4CoreCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig4(experiments.ScaledFig4(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFig4(out(b), rows)
	}
}

func BenchmarkTable1CrossCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(experiments.ScaledTable1(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintTable1(out(b), rows)
	}
}

func BenchmarkFig5Distillation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFig5(experiments.ScaledFig5(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFig5(out(b), series)
	}
}

func BenchmarkFig6Multiplexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig6(experiments.ScaledFig6(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFig6(out(b), rows)
	}
}

func BenchmarkFig7CFSPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7(experiments.ScaledCFS(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFig7(out(b), rows)
	}
}

func BenchmarkFig8CFSCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFig8(experiments.ScaledCFS(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFig8(out(b), series)
	}
}

func BenchmarkFig9TCPTransfers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFig9(experiments.ScaledFig9(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFig9(out(b), series)
	}
}

func BenchmarkFig11WebReplicas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFig11(experiments.ScaledFig11(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFig11(out(b), series)
	}
}

func BenchmarkFig12ACDC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12(experiments.ScaledFig12(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFig12(out(b), res)
	}
}

func BenchmarkAccuracyBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAccuracy(experiments.ScaledAccuracy(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintAccuracy(out(b), rows)
	}
}

func BenchmarkGnutella10k(b *testing.B) {
	// The paper's headline scale study: a 10,000-servent connectivity
	// measurement (scaled to 2,500 in bench mode; cmd/mnbench runs 10k).
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScale(experiments.ScaledScale(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintScale(out(b), res)
	}
}

func BenchmarkParcoreScaling(b *testing.B) {
	// Sequential vs parallel runtime on the paper's 20×20 ring at 1/2/4/8
	// cores (full scale in cmd/mnbench, which also records
	// BENCH_parcore.json). Every configuration must produce identical
	// counters; wall-clock speedup is only meaningful when the host has
	// cores to run the shards on.
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunParcoreScaling(experiments.ScaledParcore(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintParcore(out(b), res)
		if !res.Deterministic {
			b.Fatal("parallel configurations diverged from the sequential baseline")
		}
		// Wall-clock speedup depends on the host (CPU count, load,
		// throttling), so it is reported rather than asserted; the
		// determinism contract above is the hard requirement.
		for _, r := range res.Rows {
			if r.Cores == 4 && r.Parallel {
				b.ReportMetric(r.Speedup, "speedup-4core")
				if runtime.NumCPU() >= 4 && r.Speedup < 2 {
					b.Logf("note: 4-core speedup %.2fx < 2x on a %d-CPU host", r.Speedup, runtime.NumCPU())
				}
			}
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationRouteTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRouteTableAblation()
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintRouteTableAblation(out(b), rows)
	}
}

func BenchmarkAblationPayloadCaching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunPayloadCachingAblation(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintPayloadCachingAblation(out(b), rows)
	}
}

func BenchmarkAblationRoutingFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFailoverAblation()
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFailoverAblation(out(b), rows)
	}
}

func BenchmarkFednetScaling(b *testing.B) {
	// In-process parallel vs real multi-process federation over loopback
	// sockets on the shared ring-cbr workload (full scale in cmd/mnbench,
	// which also records BENCH_fednet.json). The benchmark spawns this
	// test binary as the worker fleet (see TestMain); the hard requirement
	// is that every mode produces identical counters — socket speedup is
	// host-dependent and only reported.
	for i := 0; i < b.N; i++ {
		cfg := experiments.ScaledFednet(0.05)
		cfg.Cores = []int{2}
		res, err := experiments.RunFednetScaling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		experiments.PrintFednet(out(b), res)
		if !res.Deterministic {
			b.Fatal("federated configurations diverged from the sequential baseline")
		}
		for _, r := range res.Rows {
			if r.Mode == "fednet" && r.Cores == 2 {
				b.ReportMetric(r.Speedup, "speedup-2proc")
			}
		}
	}
}
